(** Ring-buffered structured event recorder.

    The timeline counterpart of [Dpm_obs.Probe]: a process-wide
    recorder sink held in an [Atomic.t].  When no recorder is active
    every emission helper is a single atomic load and returns — no
    allocation, no clock read — so call sites may stay unconditionally
    instrumented.  When one {e is} active, each domain appends to its
    own fixed-capacity ring buffer (registered on first use, cached in
    domain-local storage), so the hot path takes no lock and domains
    never contend; once a ring fills, the oldest events are
    overwritten and counted as {!dropped}.

    Callers that attach argument lists should guard construction with
    {!enabled} — building the [args] list itself allocates. *)

type t
(** A recorder: an epoch plus one ring buffer per recording domain. *)

val create : ?capacity:int -> unit -> t
(** Fresh recorder.  [capacity] is the per-domain ring size in events
    (default 65536). *)

val set_active : t option -> unit
(** Install (or, with [None], remove) the process-wide recorder. *)

val current : unit -> t option
(** The active recorder, if any. *)

val enabled : unit -> bool
(** [true] iff a recorder is active. *)

val with_recorder : t -> (unit -> 'a) -> 'a
(** Run a thunk with [t] active, restoring the previous sink
    afterwards (also on exceptions). *)

val epoch : t -> float
(** Wall-clock seconds at creation; export rebases timestamps onto
    this. *)

val emit : t -> ?args:(string * Event.arg) list -> Event.phase -> string -> unit
(** Append one event to the calling domain's ring of [t]. *)

val begin_ : ?args:(string * Event.arg) list -> string -> unit
(** Open a duration scope on the active recorder; no-op when none. *)

val end_ : ?args:(string * Event.arg) list -> string -> unit
(** Close a duration scope on the active recorder; no-op when none. *)

val instant : ?args:(string * Event.arg) list -> string -> unit
(** Mark a point in time on the active recorder; no-op when none. *)

val events : t -> Event.t list
(** All retained events, merged across domains and sorted by
    timestamp (ties keep per-domain emission order). *)

val length : t -> int
(** Number of retained events across all rings. *)

val dropped : t -> int
(** Number of events lost to ring overwrite across all rings. *)
