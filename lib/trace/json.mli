(** Minimal JSON values, parser, and compact printer.

    The tracing layer sits below every other library in the repo (so
    that [Dpm_obs.Span] can emit events without a dependency cycle),
    which rules out pulling in a JSON package.  This module is the
    small, self-contained subset the tracing stack needs: Chrome
    trace-event export, provenance round-tripping, and
    [bench_diff]-style comparison of [Report.to_json] documents.

    Numbers are represented as [float] (as in JSON itself); non-finite
    floats print as [null], mirroring [Dpm_obs.Report.to_json]. *)

(** A JSON document. *)
type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  Errors
    carry a byte offset and a short description. *)

val to_string : t -> string
(** Compact single-line rendering; object keys keep their order. *)

val escape : string -> string
(** JSON string-escape the contents (no surrounding quotes): quotes,
    backslashes, and control characters become their backslash
    escapes. *)

val float_str : float -> string
(** Shortest round-trippable decimal for a finite float; ["null"] for
    nan/infinities. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for other constructors. *)

val to_float : t -> float option
(** [Num x] payload. *)

val to_int : t -> int option
(** [Num x] truncated, when [x] is integral. *)

val to_str : t -> string option
(** [Str s] payload. *)
