(** Chrome trace-event JSON export.

    Renders recorded events in the Trace Event Format understood by
    Perfetto ([ui.perfetto.dev]) and [chrome://tracing]: a JSON object
    with a [traceEvents] array of [{"name", "cat", "ph", "ts", "pid",
    "tid", ...}] records, timestamps in microseconds relative to the
    recorder epoch.  [Begin]/[End] pairs nest into duration slices per
    track; instants render with scope ["t"] (thread). *)

val render : epoch:float -> Event.t list -> string
(** Render an event list (absolute timestamps rebased onto [epoch]).
    Deterministic given the events — used for golden pinning. *)

val to_json : Recorder.t -> string
(** [render] the recorder's merged, time-sorted events against its
    own epoch. *)
