(** Bench-metrics comparison: the logic behind [tools/bench_diff.exe].

    Takes two metric documents (the [Report.to_json] shape, optionally
    wrapped in the bench harness's [{"meta": ..., "metrics": ...}]
    envelope), flattens them to named float series, classifies each
    series as lower-better / higher-better / informational from its
    name, and flags relative changes beyond a threshold as regressions
    or improvements.  Pure — file IO and exit codes live in the
    tool. *)

(** Which way a series should move. *)
type direction = Lower_better | Higher_better | Informational

(** Per-series outcome. *)
type verdict = Regression | Improvement | Unchanged | Only_old | Only_new

(** One compared series.  [delta] is the relative change
    [(after - before) / |before|]; [None] when either side is missing
    or the baseline is zero. *)
type row = {
  name : string;
  before : float option;
  after : float option;
  delta : float option;
  direction : direction;
  verdict : verdict;
}

val direction_of : string -> direction
(** Classify a series name: time-like suffixes ([.seconds],
    [ns_per_run], [_time], [wall], [latency], [duration]) are
    lower-better; rate-like ones ([per_sec], [throughput],
    [hit_ratio], [speedup]) are higher-better; everything else is
    informational and never flags. *)

val extract : Json.t -> (string * float) list
(** Flatten a metrics document to series: counters and gauges keep
    their value; timers contribute [name.seconds]; histograms
    contribute [name.sum].  A [{"meta", "metrics"}] envelope is
    unwrapped first.  Null (non-finite) values are skipped. *)

val compare_series :
  ?threshold:float ->
  ?overrides:(string * float) list ->
  (string * float) list ->
  (string * float) list ->
  row list
(** Compare baseline against candidate, sorted by name.  [threshold]
    is the default relative change that flags (default [0.10]);
    [overrides] gives per-series thresholds by exact name. *)

val regressions : row list -> row list
(** The rows whose verdict is [Regression]. *)

val render : row list -> string
(** Human-readable table plus a one-line summary. *)
