type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------- *)

let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (float_str x)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with Failure _ -> fail "bad \\u escape"
              in
              (match Uchar.of_int code with
              | u -> Buffer.add_utf_8_uchar buf u
              | exception Invalid_argument _ -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "json: at byte %d: %s" at msg)

(* --- accessors ------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
