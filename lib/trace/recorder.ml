(* One ring per recording domain.  [next] counts every event ever
   written; the live window is the last [min next capacity] slots, so
   dropped = next - retained without extra bookkeeping. *)
type ring = { tid : int; buf : Event.t option array; mutable next : int }

type t = {
  id : int;
  capacity : int;
  epoch : float;
  lock : Mutex.t;
  mutable rings : ring list;
}

let ids = Atomic.make 0

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  {
    id = Atomic.fetch_and_add ids 1;
    capacity;
    epoch = Unix.gettimeofday ();
    lock = Mutex.create ();
    rings = [];
  }

(* The active sink mirrors [Dpm_obs.Probe.active]: installs are rare,
   reads are a single atomic load on the hot path. *)
let active : t option Atomic.t = Atomic.make None

let set_active t = Atomic.set active t
let current () = Atomic.get active
let enabled () = Option.is_some (Atomic.get active)

let with_recorder t f =
  let prev = Atomic.get active in
  Atomic.set active (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set active prev) f

let epoch t = t.epoch

(* Per-domain cache of the ring last used, keyed by physical equality
   on the recorder, so repeat emissions skip the registration lock. *)
let slot : (t * ring) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ring_for t =
  let slot = Domain.DLS.get slot in
  match !slot with
  | Some (t', r) when t' == t -> r
  | _ ->
      let tid = (Domain.self () :> int) in
      Mutex.lock t.lock;
      let r =
        match List.find_opt (fun r -> r.tid = tid) t.rings with
        | Some r -> r
        | None ->
            let r = { tid; buf = Array.make t.capacity None; next = 0 } in
            t.rings <- r :: t.rings;
            r
      in
      Mutex.unlock t.lock;
      slot := Some (t, r);
      r

let emit t ?(args = []) phase name =
  let r = ring_for t in
  let e = { Event.ts = Unix.gettimeofday (); name; phase; tid = r.tid; args } in
  r.buf.(r.next mod t.capacity) <- Some e;
  r.next <- r.next + 1

let on_active phase ?args name =
  match Atomic.get active with
  | None -> ()
  | Some t -> emit t ?args phase name

let begin_ ?args name = on_active Event.Begin ?args name
let end_ ?args name = on_active Event.End ?args name
let instant ?args name = on_active Event.Instant ?args name

(* Oldest-first walk of one ring's live window. *)
let ring_events t r =
  let retained = min r.next t.capacity in
  let first = r.next - retained in
  let out = ref [] in
  for i = r.next - 1 downto first do
    match r.buf.(i mod t.capacity) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let with_rings t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t.rings)

let events t =
  with_rings t (fun rings ->
      List.concat_map (ring_events t) rings |> List.stable_sort Event.compare_ts)

let length t =
  with_rings t
    (List.fold_left (fun acc r -> acc + min r.next t.capacity) 0)

let dropped t =
  with_rings t
    (List.fold_left (fun acc r -> acc + max 0 (r.next - t.capacity)) 0)
