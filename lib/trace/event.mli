(** Timeline events.

    One recorded point (or scope edge) on the trace timeline, in the
    Chrome trace-event vocabulary: [Begin]/[End] pairs delimit a
    duration on one track, [Instant] marks a point in time.  Events
    carry typed arguments so consumers (Perfetto, [bench_diff], tests)
    need no string re-parsing. *)

(** A typed event argument value. *)
type arg = Str of string | Int of int | Float of float | Bool of bool

(** Chrome trace-event phase: duration begin/end, or an instant. *)
type phase = Begin | End | Instant

(** One recorded event.  [ts] is absolute wall-clock seconds
    ([Unix.gettimeofday]); the exporter rebases onto the recorder
    epoch.  [tid] is the recording domain's id, which becomes the
    Perfetto track. *)
type t = {
  ts : float;
  name : string;
  phase : phase;
  tid : int;
  args : (string * arg) list;
}

val compare_ts : t -> t -> int
(** Order by timestamp (stable sorts preserve per-domain emission
    order for equal stamps). *)

val phase_code : phase -> string
(** Chrome [ph] field: ["B"], ["E"], or ["i"]. *)
