type origin = Cold | Warm | Cache_hit

type counts = {
  mutable robust_retries : int;
  mutable tikhonov_rungs : int;
  mutable sparse_fallbacks : int;
  mutable faults_injected : int;
  mutable pivots : int;
  mutable residual : float;
  mutable eval_path : string option;
}

type t = {
  fingerprint : int64;
  method_ : string;
  eval_path : string;
  iterations : int;
  residual : float;
  origin : origin;
  robust_retries : int;
  tikhonov_rungs : int;
  sparse_fallbacks : int;
  faults_injected : int;
  deadline_s : float option;
  wall_s : float;
  weight : float;
  arrival_rate : float;
}

(* Domain-local active collector, [None] outside [collect].  A ref
   cell per domain keeps the notes allocation-free: ticking mutates
   fields in place. *)
let collector : counts option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fresh () =
  {
    robust_retries = 0;
    tikhonov_rungs = 0;
    sparse_fallbacks = 0;
    faults_injected = 0;
    pivots = 0;
    residual = Float.nan;
    eval_path = None;
  }

let collect f =
  let slot = Domain.DLS.get collector in
  let saved = !slot in
  let c = fresh () in
  slot := Some c;
  let r = Fun.protect ~finally:(fun () -> slot := saved) f in
  (r, c)

let with_counts f =
  match !(Domain.DLS.get collector) with None -> () | Some c -> f c

let note_robust_retry () =
  with_counts (fun c -> c.robust_retries <- c.robust_retries + 1)

let note_tikhonov_rung () =
  with_counts (fun c -> c.tikhonov_rungs <- c.tikhonov_rungs + 1)

let note_sparse_fallback () =
  with_counts (fun c -> c.sparse_fallbacks <- c.sparse_fallbacks + 1)

let note_fault () =
  with_counts (fun c -> c.faults_injected <- c.faults_injected + 1)

let note_pivot () = with_counts (fun c -> c.pivots <- c.pivots + 1)
let note_residual r = with_counts (fun c -> c.residual <- r)
let note_eval_path p = with_counts (fun c -> c.eval_path <- Some p)

let of_counts ~method_ ~iterations ~origin ~wall_s ?eval_path ?residual
    ?deadline_s (c : counts) =
  {
    fingerprint = 0L;
    method_;
    eval_path =
      (match eval_path with
      | Some p -> p
      | None -> Option.value c.eval_path ~default:"");
    iterations;
    residual = (match residual with Some r -> r | None -> c.residual);
    origin;
    robust_retries = c.robust_retries;
    tikhonov_rungs = c.tikhonov_rungs;
    sparse_fallbacks = c.sparse_fallbacks;
    faults_injected = c.faults_injected;
    deadline_s;
    wall_s;
    weight = Float.nan;
    arrival_rate = Float.nan;
  }

let origin_to_string = function
  | Cold -> "cold"
  | Warm -> "warm"
  | Cache_hit -> "cache_hit"

let origin_of_string = function
  | "cold" -> Some Cold
  | "warm" -> Some Warm
  | "cache_hit" -> Some Cache_hit
  | _ -> None

let fingerprint_hex t = Printf.sprintf "%016Lx" t.fingerprint

let opt_num x = if Float.is_finite x then Json.Num x else Json.Null

let to_json t =
  Json.to_string
    (Json.Obj
       [
         ("fingerprint", Json.Str (fingerprint_hex t));
         ("method", Json.Str t.method_);
         ("eval_path", Json.Str t.eval_path);
         ("iterations", Json.Num (float_of_int t.iterations));
         ("residual", opt_num t.residual);
         ("origin", Json.Str (origin_to_string t.origin));
         ("robust_retries", Json.Num (float_of_int t.robust_retries));
         ("tikhonov_rungs", Json.Num (float_of_int t.tikhonov_rungs));
         ("sparse_fallbacks", Json.Num (float_of_int t.sparse_fallbacks));
         ("faults_injected", Json.Num (float_of_int t.faults_injected));
         ( "deadline_s",
           match t.deadline_s with Some d -> Json.Num d | None -> Json.Null );
         ("wall_s", opt_num t.wall_s);
         ("weight", opt_num t.weight);
         ("arrival_rate", opt_num t.arrival_rate);
       ])

let of_json s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      let str k = Option.bind (Json.member k j) Json.to_str in
      let int k = Option.bind (Json.member k j) Json.to_int in
      let num k =
        match Json.member k j with
        | Some (Json.Num x) -> x
        | _ -> Float.nan
      in
      match (str "fingerprint", str "method", int "iterations", str "origin")
      with
      | Some fp_hex, Some method_, Some iterations, Some origin_s -> (
          match
            ( Int64.of_string_opt ("0x" ^ fp_hex),
              origin_of_string origin_s )
          with
          | Some fingerprint, Some origin ->
              Ok
                {
                  fingerprint;
                  method_;
                  eval_path = Option.value (str "eval_path") ~default:"";
                  iterations;
                  residual = num "residual";
                  origin;
                  robust_retries =
                    Option.value (int "robust_retries") ~default:0;
                  tikhonov_rungs =
                    Option.value (int "tikhonov_rungs") ~default:0;
                  sparse_fallbacks =
                    Option.value (int "sparse_fallbacks") ~default:0;
                  faults_injected =
                    Option.value (int "faults_injected") ~default:0;
                  deadline_s =
                    (let d = num "deadline_s" in
                     if Float.is_finite d then Some d else None);
                  wall_s = num "wall_s";
                  weight = num "weight";
                  arrival_rate = num "arrival_rate";
                }
          | None, _ -> Error "provenance: bad fingerprint hex"
          | _, None -> Error "provenance: bad origin")
      | _ -> Error "provenance: missing required field")

let to_args t =
  List.concat
    [
      [
        ("fingerprint", Event.Str (fingerprint_hex t));
        ("method", Event.Str t.method_);
        ("origin", Event.Str (origin_to_string t.origin));
        ("iterations", Event.Int t.iterations);
        ("wall_s", Event.Float t.wall_s);
      ];
      (if t.eval_path = "" then []
       else [ ("eval_path", Event.Str t.eval_path) ]);
      (if Float.is_finite t.residual then
         [ ("residual", Event.Float t.residual) ]
       else []);
      (if t.robust_retries > 0 then
         [ ("robust_retries", Event.Int t.robust_retries) ]
       else []);
      (if t.tikhonov_rungs > 0 then
         [ ("tikhonov_rungs", Event.Int t.tikhonov_rungs) ]
       else []);
      (if t.sparse_fallbacks > 0 then
         [ ("sparse_fallbacks", Event.Int t.sparse_fallbacks) ]
       else []);
      (if t.faults_injected > 0 then
         [ ("faults_injected", Event.Int t.faults_injected) ]
       else []);
      (match t.deadline_s with
      | Some d -> [ ("deadline_s", Event.Float d) ]
      | None -> []);
    ]

let pp ppf t =
  Format.fprintf ppf "%s[%s] %s fp=%s iters=%d wall=%.3gs" t.method_
    (if t.eval_path = "" then "-" else t.eval_path)
    (origin_to_string t.origin) (fingerprint_hex t) t.iterations t.wall_s
