(** Model validation: report {e all} violations, not just the first.

    The raising constructors ([Model.create], [Generator.of_matrix])
    stop at the first bad entry — correct for fail-fast library use,
    useless for diagnosing a corrupted or hand-built instance.  These
    passes walk the whole object and return every finding as a
    {!Diagnostic.t} (capped at {!max_diagnostics}, with a [truncated]
    warning when the cap is hit).  [dpm_cli check] and the pre-solve
    validation hook are built on them. *)

open Dpm_linalg
open Dpm_core

val max_diagnostics : int
(** Report cap (100). *)

val choices :
  num_states:int -> (int -> Dpm_ctmdp.Model.choice list) -> Diagnostic.t list
(** Validate a raw CTMDP choice table against [Model.create]'s
    invariants — nonempty choice lists, finite costs, finite
    nonnegative rates, in-range non-self targets, distinct action
    labels (codes [empty-choice], [non-finite-cost], [bad-rate],
    [bad-target], [duplicate-action]; a [choices_of] call that raises
    becomes [choices-raised]) — plus unichain reachability of the
    union graph of all choices ([not-unichain]), checked only when no
    structural error was found. *)

val model : Dpm_ctmdp.Model.t -> Diagnostic.t list
(** {!choices} on an already-built model (useful after [map_costs],
    which deliberately skips re-validation). *)

val model_r :
  num_states:int ->
  (int -> Dpm_ctmdp.Model.choice list) ->
  (Dpm_ctmdp.Model.t, Error.t) result
(** Validate, then build: [Error (Invalid_model findings)] when
    {!choices} reports any error-severity finding (counted as
    [robust.models_rejected]), otherwise [Ok (Model.create ...)] —
    with anything the constructor itself still raises mapped through
    {!Guard.run}. *)

val generator_matrix : ?tol:float -> Matrix.t -> Diagnostic.t list
(** Validate a dense matrix as a CTMC generator: square
    ([not-square]), finite entries ([non-finite-entry]), nonnegative
    off-diagonals ([negative-rate]), row sums within [tol] (default
    1e-9) of zero relative to the row scale ([row-sum]); an all-zero
    row is the [absorbing-state] {e warning}. *)

val system : Sys_model.t -> Diagnostic.t list
(** Validate a composed DPM system: re-derives the paper's three
    Section-III action-validity constraints from the SP quadruple and
    checks them against every state's offered action set —
    (1) an active SP in a stable state only commands active modes
    ([c1-interrupts-service]); (2) in the full stable state an
    inactive SP neither stays nor switches to an inactive mode with
    an equal-or-longer wakeup ([c2-no-progress]); (3) in the full
    transfer state no strictly slower active mode is offered
    ([c3-slower-service]) — plus nonempty action sets ([no-actions])
    and the {!choices} pass (generator invariants and unichain
    reachability) on the raw choice table. *)

val system_choices :
  Sys_model.t -> weight:float -> int -> Dpm_ctmdp.Model.choice list
(** The raw choice table [Sys_model.to_ctmdp] would hand the solvers,
    {e before} any validation — the injection point the fault harness
    corrupts and {!model_r} must then reject. *)
