let ( let* ) = Guard.( let* )

let validate_model m =
  match Diagnostic.errors (Validate.model m) with
  | [] -> Ok ()
  | errs ->
      Dpm_obs.Probe.incr "robust.models_rejected";
      Error (Error.Invalid_model errs)

let solve_r ?ref_state ?max_iter ?init ?eval ?deadline_s ?faults
    ?(validate = true) m =
  let guard =
    Guard.compose [ Fault.guard_opt faults; Guard.of_deadline deadline_s ]
  in
  let* () = if validate then validate_model m else Ok () in
  let* r =
    Guard.run ~stage:"policy_iteration" (fun () ->
        Dpm_ctmdp.Policy_iteration.solve ?ref_state ?max_iter ?init ?eval
          ~guard m)
  in
  let* () =
    Guard.check_finite ~site:"policy_iteration.gain"
      r.Dpm_ctmdp.Policy_iteration.gain
  in
  let* () =
    Guard.check_finite_vec ~site:"policy_iteration.bias"
      r.Dpm_ctmdp.Policy_iteration.bias
  in
  Ok r
