let ( let* ) = Guard.( let* )

let solve_r ?ref_state ?max_pivots ?deadline_s ?faults ?(validate = true) m =
  let guard =
    Guard.compose [ Fault.guard_opt faults; Guard.of_deadline deadline_s ]
  in
  let* () = if validate then Policy_iteration.validate_model m else Ok () in
  let* r =
    Guard.run ~stage:"lp_solver" (fun () ->
        Dpm_ctmdp.Lp_solver.solve ?ref_state ?max_pivots ~guard m)
  in
  let* () =
    Guard.check_finite ~site:"lp_solver.gain" r.Dpm_ctmdp.Lp_solver.gain
  in
  let* () =
    Guard.check_finite_vec ~site:"lp_solver.bias" r.Dpm_ctmdp.Lp_solver.bias
  in
  Ok r
