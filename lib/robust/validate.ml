open Dpm_linalg
open Dpm_core

let max_diagnostics = 100

(* Collector capping the report size — a fully corrupted large model
   should not produce megabytes of findings. *)
type collector = { mutable diags : Diagnostic.t list; mutable count : int }

let collector () = { diags = []; count = 0 }

let push c d =
  c.count <- c.count + 1;
  if c.count <= max_diagnostics then c.diags <- d :: c.diags
  else if c.count = max_diagnostics + 1 then
    c.diags <-
      Diagnostic.warning ~code:"truncated" ~site:"report"
        (Printf.sprintf "more than %d findings; further ones dropped"
           max_diagnostics)
      :: c.diags

let finish c = List.rev c.diags

let errf c ~code ~site fmt =
  Printf.ksprintf (fun msg -> push c (Diagnostic.error ~code ~site msg)) fmt

let warnf c ~code ~site fmt =
  Printf.ksprintf (fun msg -> push c (Diagnostic.warning ~code ~site msg)) fmt

(* --- CTMDP choice tables ------------------------------------------- *)

let check_choice c ~num_states ~state k (ch : Dpm_ctmdp.Model.choice) =
  let site = Printf.sprintf "state %d, choice %d" state k in
  if not (Float.is_finite ch.Dpm_ctmdp.Model.cost) then
    errf c ~code:"non-finite-cost" ~site "cost rate is %g"
      ch.Dpm_ctmdp.Model.cost;
  List.iter
    (fun (j, r) ->
      if j < 0 || j >= num_states then
        errf c ~code:"bad-target" ~site "rate targets state %d of %d" j
          num_states
      else if j = state then
        errf c ~code:"bad-target" ~site "self-rate (diagonal is implied)"
      else if not (Float.is_finite r) then
        errf c ~code:"bad-rate" ~site "rate to state %d is %g" j r
      else if r < 0.0 then
        errf c ~code:"bad-rate" ~site "rate to state %d is negative (%g)" j r)
    ch.Dpm_ctmdp.Model.rates

let check_state_choices c ~num_states state (cs : Dpm_ctmdp.Model.choice list) =
  let site = Printf.sprintf "state %d" state in
  if cs = [] then errf c ~code:"empty-choice" ~site "no choices"
  else begin
    let seen = Hashtbl.create 8 in
    List.iteri
      (fun k ch ->
        (match Hashtbl.find_opt seen ch.Dpm_ctmdp.Model.action with
        | Some k0 ->
            errf c ~code:"duplicate-action" ~site
              "choices %d and %d both carry action label %d" k0 k
              ch.Dpm_ctmdp.Model.action
        | None -> Hashtbl.replace seen ch.Dpm_ctmdp.Model.action k);
        check_choice c ~num_states ~state k ch)
      cs
  end

(* Unichain reachability on the union graph: if even the union of all
   choices' rates has several closed classes, every policy does, and
   no average-cost problem on the model is well posed (Theorem 2.1 /
   the paper's connectivity argument).  Necessary, not sufficient —
   the per-policy singular case is handled at solve time by the
   Tikhonov ladder. *)
let check_unichain c ~num_states choices_by_state =
  let rates = ref [] in
  Array.iteri
    (fun i cs ->
      List.iter
        (fun (ch : Dpm_ctmdp.Model.choice) ->
          List.iter
            (fun (j, r) -> if r > 0.0 then rates := (i, j, r) :: !rates)
            ch.Dpm_ctmdp.Model.rates)
        cs)
    choices_by_state;
  match Dpm_ctmc.Generator.of_rates ~dim:num_states !rates with
  | g -> (
      match Dpm_ctmc.Structure.recurrent_classes g with
      | [] | [ _ ] -> ()
      | classes ->
          errf c ~code:"not-unichain" ~site:"union graph"
            "the union of all choices has %d closed classes; no policy can \
             be unichain"
            (List.length classes))
  | exception Dpm_ctmc.Generator.Invalid msg ->
      (* Only reachable when structural findings already exist; keep
         the message anyway for context. *)
      errf c ~code:"invalid-generator" ~site:"union graph" "%s" msg

let choices ~num_states choices_of =
  let c = collector () in
  if num_states <= 0 then begin
    errf c ~code:"empty-model" ~site:"model" "num_states = %d" num_states;
    finish c
  end
  else begin
    let table =
      Array.init num_states (fun i ->
          match choices_of i with
          | cs -> cs
          | exception exn ->
              errf c ~code:"choices-raised" ~site:(Printf.sprintf "state %d" i)
                "%s" (Printexc.to_string exn);
              [])
    in
    Array.iteri (fun i cs -> check_state_choices c ~num_states i cs) table;
    if Diagnostic.errors c.diags = [] then check_unichain c ~num_states table;
    finish c
  end

let model m =
  choices
    ~num_states:(Dpm_ctmdp.Model.num_states m)
    (Dpm_ctmdp.Model.choices m)

let model_r ~num_states choices_of =
  Dpm_obs.Probe.time "robust.validate_seconds" @@ fun () ->
  match Diagnostic.errors (choices ~num_states choices_of) with
  | [] -> Guard.run ~stage:"model-build" (fun () ->
        Dpm_ctmdp.Model.create ~num_states choices_of)
  | errs ->
      Dpm_obs.Probe.incr "robust.models_rejected";
      Error (Error.Invalid_model errs)

(* --- generator matrices -------------------------------------------- *)

let generator_matrix ?(tol = 1e-9) m =
  let c = collector () in
  let n = Matrix.rows m in
  if Matrix.cols m <> n then begin
    errf c ~code:"not-square" ~site:"matrix" "%dx%d" n (Matrix.cols m);
    finish c
  end
  else begin
    for i = 0 to n - 1 do
      let site = Printf.sprintf "row %d" i in
      let sum = ref 0.0 in
      let scale = ref 0.0 in
      let finite = ref true in
      for j = 0 to n - 1 do
        let x = Matrix.get m i j in
        if not (Float.is_finite x) then begin
          finite := false;
          errf c ~code:"non-finite-entry" ~site "entry (%d,%d) is %g" i j x
        end
        else begin
          if j <> i && x < 0.0 then
            errf c ~code:"negative-rate" ~site "entry (%d,%d) is %g" i j x;
          sum := !sum +. x;
          scale := Float.max !scale (Float.abs x)
        end
      done;
      if !finite then
        if !scale = 0.0 then
          warnf c ~code:"absorbing-state" ~site "row is all zero"
        else if Float.abs !sum > tol *. Float.max 1.0 !scale then
          errf c ~code:"row-sum" ~site "row sums to %g (scale %g)" !sum !scale
    done;
    finish c
  end

(* --- the composed DPM system --------------------------------------- *)

(* The raw choice table [to_ctmdp] would hand the solvers, exposed so
   the fault harness can corrupt it {e before} [Model.create]'s own
   validation sees it. *)
let system_choices sys ~weight =
  let states = Sys_model.states sys in
  fun i ->
    let x = states.(i) in
    List.map
      (fun a ->
        {
          Dpm_ctmdp.Model.action = a;
          rates = Sys_model.transitions sys x ~action:a;
          cost = Sys_model.cost sys ~weight x ~action:a;
        })
      (Sys_model.valid_actions sys x)

let pp_state_str sys x = Format.asprintf "%a" (Sys_model.pp_state sys) x

(* The paper's three Section-III action-validity constraints,
   re-derived from the SP quadruple and checked against the action
   sets the system model actually offers.  An empty action set is also
   an error (the paper requires every state to keep at least one
   command). *)
let check_actions c sys =
  let sp = Sys_model.sp sys in
  let q_cap = Sys_model.queue_capacity sys in
  Array.iter
    (fun x ->
      let site = pp_state_str sys x in
      let actions = Sys_model.valid_actions sys x in
      if actions = [] then errf c ~code:"no-actions" ~site "empty action set";
      List.iter
        (fun a ->
          if a < 0 || a >= Service_provider.num_modes sp then
            errf c ~code:"bad-action" ~site "action %d is not a mode" a
          else
            match x with
            | Sys_model.Stable (s, q) ->
                if Service_provider.is_active sp s then begin
                  (* (1) service must not be interrupted *)
                  if not (Service_provider.is_active sp a) then
                    errf c ~code:"c1-interrupts-service" ~site
                      "active mode %s commanded to inactive %s"
                      (Service_provider.name sp s)
                      (Service_provider.name sp a)
                end
                else if q = q_cap then begin
                  (* (2) full queue: an inactive SP must make progress *)
                  if a = s then
                    errf c ~code:"c2-no-progress" ~site
                      "full queue but inactive mode %s may stay"
                      (Service_provider.name sp s)
                  else if
                    (not (Service_provider.is_active sp a))
                    && Service_provider.wakeup_time sp a
                       >= Service_provider.wakeup_time sp s
                  then
                    errf c ~code:"c2-no-progress" ~site
                      "full queue but %s -> %s does not shorten the wakeup \
                       (%g >= %g)"
                      (Service_provider.name sp s)
                      (Service_provider.name sp a)
                      (Service_provider.wakeup_time sp a)
                      (Service_provider.wakeup_time sp s)
                end
            | Sys_model.Transfer (s, q) ->
                (* (3) full transfer: no strictly slower active mode *)
                if
                  q = q_cap
                  && Service_provider.is_active sp a
                  && Service_provider.service_rate sp a
                     < Service_provider.service_rate sp s
                then
                  errf c ~code:"c3-slower-service" ~site
                    "full transfer from %s may switch to slower active %s \
                     (mu %g < %g)"
                    (Service_provider.name sp s)
                    (Service_provider.name sp a)
                    (Service_provider.service_rate sp a)
                    (Service_provider.service_rate sp s))
        actions)
    (Sys_model.states sys)

let system sys =
  Dpm_obs.Probe.time "robust.validate_seconds" @@ fun () ->
  let c = collector () in
  check_actions c sys;
  (* Generator invariants + unichain reachability, via the same raw
     choice table the solvers consume. *)
  let n = Sys_model.num_states sys in
  let raw = system_choices sys ~weight:0.0 in
  let structural = choices ~num_states:n raw in
  List.iter (push c) structural;
  finish c
