(** Result-returning policy iteration — the guarded face of
    {!Dpm_ctmdp.Policy_iteration.solve}. *)

val validate_model : Dpm_ctmdp.Model.t -> (unit, Error.t) result
(** [Error (Invalid_model findings)] when {!Validate.model} reports
    any error-severity finding (counted as [robust.models_rejected]);
    shared by the other [solve_r] wrappers. *)

val solve_r :
  ?ref_state:int ->
  ?max_iter:int ->
  ?init:Dpm_ctmdp.Policy.t ->
  ?eval:Dpm_ctmdp.Policy_iteration.eval_path ->
  ?deadline_s:float ->
  ?faults:Fault.plan ->
  ?validate:bool ->
  Dpm_ctmdp.Model.t ->
  (Dpm_ctmdp.Policy_iteration.result, Error.t) result
(** [solve_r m] is {!Dpm_ctmdp.Policy_iteration.solve} with the full
    guardrail stack:

    - [validate] (default [true]): a {!Validate.model} pass first —
      all violations reported as [Error (Invalid_model _)] (this is
      what catches NaN costs smuggled in via [Model.map_costs], which
      skips re-validation by design);
    - [deadline_s]: a wall-clock budget ticked every PI iteration and
      inside every evaluation sweep ([Error (Deadline_exceeded _)]);
    - the iteration budget [max_iter] maps to
      [Error (Nonconvergent _)], exhaustion of the evaluation's
      Tikhonov ladder to [Error Singular];
    - a NaN/Inf scan of the returned gain and bias
      ([Error (Non_finite _)]);
    - [faults]: the fault plan's guard (injected stalls) — test
      harness only.

    Only runtime-fatal exceptions ([Out_of_memory], ...) can still
    escape. *)
