let ( let* ) = Guard.( let* )

let solve_r ?tol ?max_iter ?deadline_s ?faults ?(validate = true) m =
  let guard =
    Guard.compose [ Fault.guard_opt faults; Guard.of_deadline deadline_s ]
  in
  let* () = if validate then Policy_iteration.validate_model m else Ok () in
  let* r =
    Guard.run ~stage:"value_iteration" (fun () ->
        Dpm_ctmdp.Value_iteration.solve ?tol ?max_iter ~guard m)
  in
  let* () =
    Guard.check_finite_vec ~site:"value_iteration.values"
      r.Dpm_ctmdp.Value_iteration.values
  in
  let* () =
    Guard.check_finite ~site:"value_iteration.gain_lower"
      r.Dpm_ctmdp.Value_iteration.gain_lower
  in
  let* () =
    Guard.check_finite ~site:"value_iteration.gain_upper"
      r.Dpm_ctmdp.Value_iteration.gain_upper
  in
  if not r.Dpm_ctmdp.Value_iteration.converged then begin
    Dpm_obs.Probe.incr "robust.nonconvergent";
    Error
      (Error.Nonconvergent
         {
           iterations = r.Dpm_ctmdp.Value_iteration.iterations;
           residual =
             r.Dpm_ctmdp.Value_iteration.gain_upper
             -. r.Dpm_ctmdp.Value_iteration.gain_lower;
         })
  end
  else Ok r
