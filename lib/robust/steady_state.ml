let ( let* ) = Guard.( let* )

let of_matrix_r ?tol m =
  match Diagnostic.errors (Validate.generator_matrix ?tol m) with
  | [] ->
      Guard.run ~stage:"generator" (fun () ->
          Dpm_ctmc.Generator.of_matrix ?tol m)
  | errs ->
      Dpm_obs.Probe.incr "robust.models_rejected";
      Error (Error.Invalid_model errs)

let solve_r ?deadline_s ?faults g =
  let guard =
    Guard.compose [ Fault.guard_opt faults; Guard.of_deadline deadline_s ]
  in
  let* p =
    Guard.run ~stage:"steady_state" (fun () ->
        Dpm_ctmc.Steady_state.solve ~guard g)
  in
  let* () = Guard.check_finite_vec ~site:"steady_state.distribution" p in
  (* Exact-residual re-verification: one mat-vec, catches a fallback
     chain (sweeps -> GTH) that "succeeded" into garbage. *)
  let residual = Dpm_ctmc.Steady_state.residual g p in
  let scale = Float.max 1.0 (Dpm_ctmc.Generator.uniformization_rate g) in
  if residual <= 1e-7 *. scale then Ok p
  else begin
    Dpm_obs.Probe.incr "robust.verification_failures";
    Error (Error.Nonconvergent { iterations = 0; residual })
  end
