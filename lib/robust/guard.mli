(** Solver guardrails: deadlines, finiteness scans, exception fences.

    The solver loops of this repository accept a generic
    [?guard:(unit -> unit)] hook, invoked once per iteration / pivot /
    sweep / elimination step, that may raise to abort the solve.  This
    module builds the hooks ({!deadline}) and the fences that turn
    whatever escapes a solve into a typed {!Error.t} ({!run}), plus
    the NaN/Inf scans applied at stage boundaries. *)

open Dpm_linalg

val none : unit -> unit
(** The no-op guard. *)

val compose : (unit -> unit) list -> unit -> unit
(** Tick several guards in order (no-ops are dropped). *)

val deadline : seconds:float -> unit -> unit
(** [deadline ~seconds] is a guard enforcing a wall-clock budget
    counted from {e now} (closure creation).  A tick at or past the
    budget increments the [robust.deadline_exceeded] counter and
    raises {!Error.Deadline_signal} — which {!run} maps to
    [Error Deadline_exceeded].  A budget of [0.] fires on the first
    tick; negative budgets are [Invalid_argument].  Resolution is one
    solver step: a single pathological step cannot be interrupted
    mid-flight (no signals, no threads — see DESIGN.md). *)

val of_deadline : float option -> unit -> unit
(** [of_deadline (Some s)] is [deadline ~seconds:s]; [None] is
    {!none} — the shape every [?deadline_s] entry point uses. *)

val check_finite : site:string -> float -> (unit, Error.t) result
(** [Error (Non_finite site)] when the value is NaN or infinite
    (counted as [robust.non_finite]). *)

val check_finite_vec : site:string -> Vec.t -> (unit, Error.t) result
(** First non-finite entry loses, reported as ["site[i]"]. *)

val run : ?stage:string -> (unit -> 'a) -> ('a, Error.t) result
(** [run f] is [Ok (f ())], with every escaping exception mapped
    through {!Error.of_exn} to [Error _] (counted as
    [robust.errors]).  Exceptions {!Error.of_exn} refuses
    ([Out_of_memory], [Stack_overflow], ...) are re-raised with their
    original backtrace.  [stage] names the failing phase in debug
    logs. *)

val ( let* ) :
  ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
(** [Result.bind] — lets the [solve_r] wrappers chain validation,
    solve and post-scan steps. *)
