(** Result-returning value iteration — the guarded face of
    {!Dpm_ctmdp.Value_iteration.solve}. *)

val solve_r :
  ?tol:float ->
  ?max_iter:int ->
  ?deadline_s:float ->
  ?faults:Fault.plan ->
  ?validate:bool ->
  Dpm_ctmdp.Model.t ->
  (Dpm_ctmdp.Value_iteration.result, Error.t) result
(** {!Dpm_ctmdp.Value_iteration.solve} with the guardrail stack of
    {!Policy_iteration.solve_r}.  Two mappings are specific to VI:
    the raising core returns with [converged = false] rather than
    raising, which becomes [Error (Nonconvergent { iterations;
    residual = gain_upper - gain_lower })] (counted as
    [robust.nonconvergent]); and the NaN scan covers the value vector
    and both gain bounds — uniformized backups overflow to infinities
    on astronomically scaled costs well before any budget is spent. *)
