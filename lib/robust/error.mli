(** The typed failure taxonomy of the robustness layer.

    Every [solve_r] entry point of {!Dpm_robust} returns
    [('a, Error.t) result]: the raising core stays as it is (see
    DESIGN.md — rewriting the solvers in result style would double
    every signature for failure paths that occur on no well-formed
    model), and this layer maps the exceptions that {e can} escape it
    onto a closed sum a caller can actually match on. *)

type t =
  | Singular
      (** a linear system had no usable LU factorization even after
          the solver's own retry ladders (policy evaluation exhausted
          its Tikhonov rungs, Padé re-scaling still singular, ...) *)
  | Nonconvergent of { iterations : int; residual : float }
      (** an iterative solve spent its budget; [residual] is the
          final convergence measure ([gain_upper - gain_lower] for
          value iteration, sweep residual for steady-state sweeps,
          NaN when the raising core reported no measure) *)
  | Cycling
      (** the simplex exhausted its pivot budget twice — once under
          Dantzig pricing and once under the automatic Bland
          anti-cycling retry *)
  | Invalid_model of Diagnostic.t list
      (** the model/matrix violates invariants; {e all} detected
          violations are listed, not just the first *)
  | Deadline_exceeded of { budget_s : float; elapsed_s : float }
      (** the per-solve wall-clock budget fired (see
          {!Guard.deadline}) *)
  | Non_finite of string
      (** a NaN/Inf appeared at the named stage boundary (e.g.
          ["policy_iteration.bias"]) *)

exception Deadline_signal of { budget_s : float; elapsed_s : float }
(** Raised by {!Guard.deadline} ticks inside solver loops; {!of_exn}
    maps it to {!Deadline_exceeded}.  Defined here (not in [Guard])
    so the mapping does not create a module cycle. *)

val of_exn : exn -> t option
(** Map an escaped exception onto the taxonomy.  [None] means "do not
    catch": [Out_of_memory], [Stack_overflow], [Assert_failure] and
    [Sys.Break] must keep unwinding.  Everything else maps: LU
    singularity, simplex cycling, generator/model validation
    exceptions, [Failure] messages mentioning convergence (the
    iteration count is parsed back out), LP infeasibility, deadline
    signals; genuinely unknown exceptions become
    [Invalid_model [unexpected-exception]] rather than escaping a
    [solve_r]. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, e.g.
    [deadline exceeded: budget 0.5s, elapsed 0.52s]. *)

val to_string : t -> string
(** {!pp} rendered to a string. *)

val exit_code : t -> int
(** The process exit code for this error class — one code per
    constructor, stable across releases, shared by every [dpm_cli]
    subcommand and relied on by the serve daemon's supervisor and CI:
    {!Deadline_exceeded} 3 (the historical sweep contract),
    {!Singular} 4, {!Nonconvergent} 5, {!Cycling} 6,
    {!Invalid_model} 7, {!Non_finite} 8.  Codes 1 (generic failure)
    and 2 (infeasible constrained problem) are reserved by the CLI
    and never returned here. *)

val class_name : t -> string
(** Stable one-word slug of the error class ([singular],
    [nonconvergent], [cycling], [invalid-model], [deadline-exceeded],
    [non-finite]) — used in logs and the serve daemon's health
    telemetry. *)
