type t =
  | Singular
  | Nonconvergent of { iterations : int; residual : float }
  | Cycling
  | Invalid_model of Diagnostic.t list
  | Deadline_exceeded of { budget_s : float; elapsed_s : float }
  | Non_finite of string

exception Deadline_signal of { budget_s : float; elapsed_s : float }

let pp ppf = function
  | Singular -> Format.pp_print_string ppf "singular linear system"
  | Nonconvergent { iterations; residual } ->
      Format.fprintf ppf "no convergence after %d iterations (residual %g)"
        iterations residual
  | Cycling -> Format.pp_print_string ppf "simplex cycling (pivot budget hit twice)"
  | Invalid_model ds ->
      Format.fprintf ppf "invalid model (%d finding%s):%a" (List.length ds)
        (if List.length ds = 1 then "" else "s")
        (fun ppf ->
          List.iter (fun d -> Format.fprintf ppf "@\n  %a" Diagnostic.pp d))
        ds
  | Deadline_exceeded { budget_s; elapsed_s } ->
      Format.fprintf ppf "deadline exceeded (budget %gs, elapsed %gs)" budget_s
        elapsed_s
  | Non_finite site -> Format.fprintf ppf "non-finite value at %s" site

let to_string e = Format.asprintf "%a" pp e

(* One process exit code per error class — the contract between
   dpm_cli, the serve daemon's supervisor, and CI.  3 predates this
   mapping (the sweep deadline path documented it first); the rest
   extend the sequence.  1 and 2 stay reserved for generic failures
   and infeasibility respectively. *)
let exit_code = function
  | Deadline_exceeded _ -> 3
  | Singular -> 4
  | Nonconvergent _ -> 5
  | Cycling -> 6
  | Invalid_model _ -> 7
  | Non_finite _ -> 8

let class_name = function
  | Singular -> "singular"
  | Nonconvergent _ -> "nonconvergent"
  | Cycling -> "cycling"
  | Invalid_model _ -> "invalid-model"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Non_finite _ -> "non-finite"

(* First integer embedded in a message — recovers the iteration count
   from [Failure "...: no convergence after %d iterations"]. *)
let first_int msg =
  let n = String.length msg in
  let rec start i =
    if i >= n then None
    else if msg.[i] >= '0' && msg.[i] <= '9' then Some i
    else start (i + 1)
  in
  match start 0 with
  | None -> None
  | Some i ->
      let j = ref i in
      while !j < n && msg.[!j] >= '0' && msg.[!j] <= '9' do
        incr j
      done;
      int_of_string_opt (String.sub msg i (!j - i))

let contains ~sub msg =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  m = 0 || go 0

let of_failure msg =
  if contains ~sub:"convergence" msg || contains ~sub:"converge" msg then
    Nonconvergent
      {
        iterations = Option.value ~default:0 (first_int msg);
        residual = Float.nan;
      }
  else if contains ~sub:"infeasible" msg then
    Invalid_model [ Diagnostic.error ~code:"lp-infeasible" ~site:"lp" msg ]
  else if contains ~sub:"unbounded" msg then
    Invalid_model [ Diagnostic.error ~code:"lp-unbounded" ~site:"lp" msg ]
  else Invalid_model [ Diagnostic.error ~code:"failure" ~site:"solver" msg ]

let of_exn = function
  (* Never swallow runtime-fatal conditions: the caller must see
     these, not a typed solver error. *)
  | Out_of_memory | Stack_overflow | Assert_failure _ | Sys.Break -> None
  | Deadline_signal { budget_s; elapsed_s } ->
      Some (Deadline_exceeded { budget_s; elapsed_s })
  | Dpm_linalg.Lu.Singular _ -> Some Singular
  | Dpm_linalg.Simplex.Cycling _ -> Some Cycling
  | Dpm_ctmc.Generator.Invalid msg ->
      Some
        (Invalid_model
           [ Diagnostic.error ~code:"invalid-generator" ~site:"generator" msg ])
  | Dpm_ctmc.Steady_state.Not_irreducible msg ->
      Some
        (Invalid_model
           [ Diagnostic.error ~code:"not-unichain" ~site:"chain" msg ])
  | Invalid_argument msg ->
      Some
        (Invalid_model
           [ Diagnostic.error ~code:"invalid-argument" ~site:"model" msg ])
  | Failure msg -> Some (of_failure msg)
  | exn ->
      Some
        (Invalid_model
           [
             Diagnostic.error ~code:"unexpected-exception" ~site:"solver"
               (Printexc.to_string exn);
           ])
