open Dpm_linalg

type kind =
  | Nan_rate
  | Negative_rate
  | Nan_cost
  | Empty_choice
  | Bad_target
  | Duplicate_action
  | Zero_row
  | Nan_entry
  | Duplicate_row
  | Stall

let all_kinds =
  [
    Nan_rate;
    Negative_rate;
    Nan_cost;
    Empty_choice;
    Bad_target;
    Duplicate_action;
    Zero_row;
    Nan_entry;
    Duplicate_row;
    Stall;
  ]

let kind_to_string = function
  | Nan_rate -> "nan-rate"
  | Negative_rate -> "negative-rate"
  | Nan_cost -> "nan-cost"
  | Empty_choice -> "empty-choice"
  | Bad_target -> "bad-target"
  | Duplicate_action -> "duplicate-action"
  | Zero_row -> "zero-row"
  | Nan_entry -> "nan-entry"
  | Duplicate_row -> "duplicate-row"
  | Stall -> "stall"

let kind_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

type plan = { seed : int64; kinds : kind list }

let plan ?(seed = 0xD1CEL) kinds = { seed; kinds }

let has plan k = List.mem k plan.kinds

let of_env () =
  match Sys.getenv_opt "DPM_FAULTS" with
  | None | Some "" -> None
  | Some spec ->
      let seed =
        match Sys.getenv_opt "DPM_FAULTS_SEED" with
        | None | Some "" -> 0xD1CEL
        | Some s -> (
            match Int64.of_string_opt (String.trim s) with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf "DPM_FAULTS_SEED: %S is not an integer" s))
      in
      let kinds =
        String.split_on_char ',' spec
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map (fun s ->
               match kind_of_string s with
               | Some k -> k
               | None ->
                   invalid_arg
                     (Printf.sprintf
                        "DPM_FAULTS: unknown fault %S (known: %s)" s
                        (String.concat ", "
                           (List.map kind_to_string all_kinds))))
      in
      if kinds = [] then None else Some { seed; kinds }

let injected kind =
  Dpm_obs.Probe.incr ("fault.injected." ^ kind_to_string kind);
  Dpm_trace.Provenance.note_fault ();
  if Dpm_trace.Recorder.enabled () then
    Dpm_trace.Recorder.instant "fault.injected"
      ~args:[ ("kind", Dpm_trace.Event.Str (kind_to_string kind)) ]

(* Derive one sub-seed per fault kind, so adding a kind to the plan
   does not move where the other kinds strike. *)
let rng_for plan kind =
  let tag = Hashtbl.hash (kind_to_string kind) in
  Dpm_prob.Rng.create (Int64.add plan.seed (Int64.of_int tag))

let corrupt_choices plan ~num_states choices_of =
  let pick_state kind = Dpm_prob.Rng.int (rng_for plan kind) num_states in
  let victims =
    List.filter_map
      (fun kind ->
        match kind with
        | Nan_rate | Negative_rate | Nan_cost | Empty_choice | Bad_target
        | Duplicate_action ->
            Some (kind, pick_state kind)
        | Zero_row | Nan_entry | Duplicate_row | Stall -> None)
      plan.kinds
  in
  let corrupt_first_rate v (c : Dpm_ctmdp.Model.choice) =
    match c.Dpm_ctmdp.Model.rates with
    | [] -> { c with Dpm_ctmdp.Model.rates = [ (0, v) ] }
    | (j, _) :: rest -> { c with Dpm_ctmdp.Model.rates = (j, v) :: rest }
  in
  let apply kind (cs : Dpm_ctmdp.Model.choice list) =
    injected kind;
    match (kind, cs) with
    | Empty_choice, _ -> []
    | _, [] -> []
    | Nan_rate, c :: rest -> corrupt_first_rate Float.nan c :: rest
    | Negative_rate, c :: rest -> corrupt_first_rate (-1.0) c :: rest
    | Nan_cost, c :: rest ->
        { c with Dpm_ctmdp.Model.cost = Float.nan } :: rest
    | Bad_target, c :: rest ->
        {
          c with
          Dpm_ctmdp.Model.rates =
            (num_states, 1.0) :: c.Dpm_ctmdp.Model.rates;
        }
        :: rest
    | Duplicate_action, c :: rest -> c :: c :: rest
    | (Zero_row | Nan_entry | Duplicate_row | Stall), cs -> cs
  in
  fun i ->
    List.fold_left
      (fun cs (kind, victim) -> if i = victim then apply kind cs else cs)
      (choices_of i) victims

let corrupt_matrix plan m =
  let n = Matrix.rows m in
  let out = Matrix.copy m in
  if n > 0 then
    List.iter
      (fun kind ->
        let rng = rng_for plan kind in
        match kind with
        | Zero_row ->
            injected kind;
            let r = Dpm_prob.Rng.int rng n in
            for j = 0 to Matrix.cols out - 1 do
              Matrix.set out r j 0.0
            done
        | Nan_entry ->
            injected kind;
            let r = Dpm_prob.Rng.int rng n in
            let c = Dpm_prob.Rng.int rng (Matrix.cols out) in
            Matrix.set out r c Float.nan
        | Duplicate_row ->
            if n > 1 then begin
              injected kind;
              let r1 = Dpm_prob.Rng.int rng n in
              let r2 = (r1 + 1 + Dpm_prob.Rng.int rng (n - 1)) mod n in
              for j = 0 to Matrix.cols out - 1 do
                Matrix.set out r2 j (Matrix.get out r1 j)
              done
            end
        | Nan_rate | Negative_rate | Nan_cost | Empty_choice | Bad_target
        | Duplicate_action | Stall ->
            ())
      plan.kinds;
  out

let stall_seconds = 0.002

let guard plan =
  if not (has plan Stall) then Guard.none
  else fun () ->
    injected Stall;
    (* Busy-wait: a deterministic per-tick time sink that makes any
       iteration budget meaningless — exactly what a deadline guard
       must catch.  [Probe.now] is the same clock the deadline reads. *)
    let t0 = Dpm_obs.Probe.now () in
    while Dpm_obs.Probe.now () -. t0 < stall_seconds do
      ()
    done

let guard_opt = function Some p -> guard p | None -> Guard.none
