(** Result-returning LP policy optimization — the guarded face of
    {!Dpm_ctmdp.Lp_solver.solve}. *)

val solve_r :
  ?ref_state:int ->
  ?max_pivots:int ->
  ?deadline_s:float ->
  ?faults:Fault.plan ->
  ?validate:bool ->
  Dpm_ctmdp.Model.t ->
  (Dpm_ctmdp.Lp_solver.result, Error.t) result
(** {!Dpm_ctmdp.Lp_solver.solve} with the guardrail stack of
    {!Policy_iteration.solve_r}.  LP-specific mappings: exhausting
    the pivot budget twice (Dantzig pricing, then the automatic Bland
    anti-cycling retry inside {!Dpm_linalg.Simplex}) becomes
    [Error Cycling]; an infeasible or unbounded program — impossible
    for a well-formed model — becomes [Error (Invalid_model _)] with
    code [lp-infeasible] / [lp-unbounded].  [deadline_s] is ticked
    before every pivot. *)
