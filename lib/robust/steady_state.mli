(** Result-returning steady-state analysis — the guarded face of
    {!Dpm_ctmc.Steady_state.solve}. *)

open Dpm_linalg

val of_matrix_r :
  ?tol:float -> Matrix.t -> (Dpm_ctmc.Generator.t, Error.t) result
(** Validate a dense matrix with {!Validate.generator_matrix} —
    reporting {e all} violations as [Error (Invalid_model _)]
    (counted as [robust.models_rejected]) — then build the generator. *)

val solve_r :
  ?deadline_s:float ->
  ?faults:Fault.plan ->
  Dpm_ctmc.Generator.t ->
  (Vec.t, Error.t) result
(** {!Dpm_ctmc.Steady_state.solve} guarded: a chain without a unique
    closed class maps to [Error (Invalid_model _)] (code
    [not-unichain]); [deadline_s] is ticked per GTH elimination step
    and per sweep; the returned distribution is NaN-scanned and
    re-verified against the exact balance equations (one mat-vec,
    [|p G| <= 1e-7 * max rate]) — a verification miss is
    [Error (Nonconvergent { iterations = 0; residual })], counted as
    [robust.verification_failures]. *)
