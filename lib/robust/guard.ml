open Dpm_linalg

let none () = ()

let compose guards =
  match List.filter (fun g -> g != none) guards with
  | [] -> none
  | [ g ] -> g
  | gs -> fun () -> List.iter (fun g -> g ()) gs

let deadline ~seconds =
  if not (seconds >= 0.0) then
    invalid_arg "Dpm_robust.Guard.deadline: budget must be >= 0";
  let start = Dpm_obs.Probe.now () in
  fun () ->
    let elapsed_s = Dpm_obs.Probe.now () -. start in
    (* [>=], not [>]: a zero budget fires deterministically on the
       first tick, which the fault tests rely on. *)
    if elapsed_s >= seconds then begin
      Dpm_obs.Probe.incr "robust.deadline_exceeded";
      raise (Error.Deadline_signal { budget_s = seconds; elapsed_s })
    end

let of_deadline = function
  | None -> none
  | Some seconds -> deadline ~seconds

let check_finite ~site x =
  if Float.is_finite x then Ok ()
  else begin
    Dpm_obs.Probe.incr "robust.non_finite";
    Error (Error.Non_finite site)
  end

let check_finite_vec ~site v =
  let n = Vec.dim v in
  let rec go i =
    if i >= n then Ok ()
    else if Float.is_finite v.(i) then go (i + 1)
    else begin
      Dpm_obs.Probe.incr "robust.non_finite";
      Error (Error.Non_finite (Printf.sprintf "%s[%d]" site i))
    end
  in
  go 0

let run ?(stage = "solve") f =
  match f () with
  | v -> Ok v
  | exception exn -> (
      let bt = Printexc.get_raw_backtrace () in
      match Error.of_exn exn with
      | None -> Printexc.raise_with_backtrace exn bt
      | Some e ->
          Dpm_obs.Probe.incr "robust.errors";
          Logs.debug (fun k ->
              k "robust: %s failed with %a" stage Error.pp e);
          Error e)

let ( let* ) r f = Result.bind r f
