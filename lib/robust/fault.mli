(** Deterministic, seed-driven fault injection.

    The robustness layer's claims ("every injected fault becomes a
    typed error or a verified fallback, never an uncaught exception")
    are only testable if faults can be injected on demand.  This
    module corrupts model inputs and matrices, and simulates solver
    stalls, from an explicit {!plan} — a seed plus a list of fault
    kinds — so every test run reproduces bit-for-bit.

    Faults are {e off} unless a plan is passed explicitly or the
    [DPM_FAULTS] environment variable is set (see {!of_env}); the
    production paths pay nothing. *)

open Dpm_linalg

type kind =
  | Nan_rate  (** one transition rate becomes NaN *)
  | Negative_rate  (** one transition rate becomes -1 *)
  | Nan_cost  (** one choice's cost rate becomes NaN *)
  | Empty_choice  (** one state loses all its choices *)
  | Bad_target  (** one choice gains a rate to an out-of-range state *)
  | Duplicate_action  (** one state lists the same action label twice *)
  | Zero_row  (** one matrix row is zeroed (absorbing / singular) *)
  | Nan_entry  (** one matrix entry becomes NaN *)
  | Duplicate_row
      (** one matrix row overwrites another — a forced singular
          factorization *)
  | Stall
      (** every guard tick busy-waits ~2ms — an injected solver stall
          that only a wall-clock deadline can catch *)

val all_kinds : kind list

val kind_to_string : kind -> string
(** Stable slug, e.g. ["nan-rate"] — the [DPM_FAULTS] vocabulary. *)

val kind_of_string : string -> kind option

type plan = { seed : int64; kinds : kind list }

val plan : ?seed:int64 -> kind list -> plan
(** [seed] defaults to [0xD1CE].  Each kind draws from its own
    sub-seed, so adding a kind to a plan does not move where the
    others strike. *)

val has : plan -> kind -> bool

val of_env : unit -> plan option
(** Parse [DPM_FAULTS] (comma-separated slugs, e.g.
    ["nan-rate,stall"]) and [DPM_FAULTS_SEED] (an integer).  [None]
    when unset or empty; [Invalid_argument] on an unknown slug or a
    malformed seed. *)

val corrupt_choices :
  plan ->
  num_states:int ->
  (int -> Dpm_ctmdp.Model.choice list) ->
  int ->
  Dpm_ctmdp.Model.choice list
(** Wrap a choice function with the plan's model-level corruptions
    (the matrix- and stall-kinds are ignored here).  Victim states
    are drawn deterministically from the plan seed.  Each applied
    corruption increments [fault.injected.<kind>]. *)

val corrupt_matrix : plan -> Matrix.t -> Matrix.t
(** Apply the plan's matrix-level corruptions to a copy (the
    choice-level and stall kinds are ignored here). *)

val guard : plan -> unit -> unit
(** The plan's guard hook: with {!Stall} in the plan, every tick
    busy-waits ~2ms (counted per tick); otherwise {!Guard.none}. *)

val guard_opt : plan option -> unit -> unit
(** [guard] on [Some], {!Guard.none} on [None]. *)

val stall_seconds : float
(** The per-tick busy-wait of {!Stall} (0.002). *)
