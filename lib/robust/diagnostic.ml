type severity = Error | Warning

type t = { severity : severity; code : string; site : string; message : string }

let error ~code ~site message = { severity = Error; code; site; message }
let warning ~code ~site message = { severity = Warning; code; site; message }
let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let pp_severity ppf = function
  | Error -> Format.pp_print_string ppf "error"
  | Warning -> Format.pp_print_string ppf "warning"

let pp ppf d =
  Format.fprintf ppf "%a[%s] %s: %s" pp_severity d.severity d.code d.site
    d.message

let to_string d = Format.asprintf "%a" pp d
