(** Structured validation findings.

    A diagnostic pins one violated invariant to one site (a state, a
    choice, a matrix entry) so a validation pass can report {e all}
    problems of a model at once instead of dying on the first — the
    contract of {!Validate}. *)

type severity =
  | Error  (** the model/matrix is unusable; solvers would misbehave *)
  | Warning  (** suspicious but solvable (e.g. an absorbing state) *)

type t = {
  severity : severity;
  code : string;
      (** stable machine-readable slug, e.g. ["bad-rate"],
          ["c2-no-progress"], ["row-sum"] *)
  site : string;  (** where, e.g. ["state 3, choice 1"] *)
  message : string;  (** human-readable detail *)
}

val error : code:string -> site:string -> string -> t
(** An [Error]-severity finding (the message is the last argument). *)

val warning : code:string -> site:string -> string -> t
(** A [Warning]-severity finding. *)

val is_error : t -> bool
(** [true] iff the finding's severity is [Error]. *)

val errors : t list -> t list
(** Keep only the [Error]-severity findings. *)

val pp : Format.formatter -> t -> unit
(** [error[bad-rate] state 3, choice 1: rate -1 is negative]. *)

val to_string : t -> string
(** {!pp} rendered to a string. *)
