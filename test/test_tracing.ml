open Dpm_trace

let t = Alcotest.test_case

(* --- Chrome export --------------------------------------------------- *)

(* The export format is a contract with Perfetto / chrome://tracing:
   pin it byte for byte from a fixed event list. *)
let golden_chrome () =
  let events =
    [
      {
        Event.ts = 100.0;
        name = "solve";
        phase = Event.Begin;
        tid = 0;
        args = [];
      };
      {
        Event.ts = 100.0005;
        name = "cache.miss";
        phase = Event.Instant;
        tid = 0;
        args = [ ("fingerprint", Event.Str "00000000deadbeef") ];
      };
      {
        Event.ts = 100.002;
        name = "solve";
        phase = Event.End;
        tid = 1;
        args =
          [
            ("iterations", Event.Int 4);
            ("converged", Event.Bool true);
            ("residual", Event.Float 0.5);
          ];
      };
    ]
  in
  let rendered = Chrome.render ~epoch:100.0 events in
  let expected =
    "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n\
    \  {\"name\": \"solve\", \"cat\": \"dpm\", \"ph\": \"B\", \"ts\": 0.000, \
     \"pid\": 1, \"tid\": 0},\n\
    \  {\"name\": \"cache.miss\", \"cat\": \"dpm\", \"ph\": \"i\", \"ts\": \
     500.000, \"pid\": 1, \"tid\": 0, \"s\": \"t\", \"args\": \
     {\"fingerprint\": \"00000000deadbeef\"}},\n\
    \  {\"name\": \"solve\", \"cat\": \"dpm\", \"ph\": \"E\", \"ts\": \
     2000.000, \"pid\": 1, \"tid\": 1, \"args\": {\"iterations\": 4, \
     \"converged\": true, \"residual\": 0.5}}\n\
     ]}\n"
  in
  Alcotest.(check string) "golden Chrome JSON" expected rendered;
  match Json.parse rendered with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("export is not valid JSON: " ^ e)

(* --- recorder -------------------------------------------------------- *)

let spans_emit_nested_events () =
  let r = Recorder.create () in
  Recorder.with_recorder r (fun () ->
      Dpm_obs.Span.with_ "outer" (fun () ->
          Dpm_obs.Span.with_ "inner" (fun () -> ())));
  let shape =
    List.map
      (fun e -> (e.Event.name, Event.phase_code e.Event.phase))
      (Recorder.events r)
  in
  Alcotest.(check (list (pair string string)))
    "B/E events nest like the call tree"
    [ ("outer", "B"); ("inner", "B"); ("inner", "E"); ("outer", "E") ]
    shape

let ring_drops_oldest () =
  let r = Recorder.create ~capacity:16 () in
  Recorder.with_recorder r (fun () ->
      for i = 1 to 40 do
        Recorder.instant "tick" ~args:[ ("i", Event.Int i) ]
      done);
  Alcotest.(check int) "keeps capacity" 16 (Recorder.length r);
  Alcotest.(check int) "counts drops" 24 (Recorder.dropped r);
  match Recorder.events r with
  | first :: _ ->
      Alcotest.(check bool) "retains the newest window" true
        (List.assoc "i" first.Event.args = Event.Int 25)
  | [] -> Alcotest.fail "empty recorder"

(* Each domain writes its own ring; the merged stream must contain
   every event and come out time-sorted at any pool size. *)
let merged_stream_is_sorted ~domains () =
  let r = Recorder.create () in
  Recorder.with_recorder r (fun () ->
      ignore
        (Dpm_par.parallel_map ~domains
           (fun k ->
             for i = 0 to 24 do
               Recorder.instant "work"
                 ~args:[ ("task", Event.Int k); ("step", Event.Int i) ]
             done;
             k)
           (Array.init 8 Fun.id)));
  let events = Recorder.events r in
  Alcotest.(check int) "every event retained" 200 (List.length events);
  Alcotest.(check int) "none dropped" 0 (Recorder.dropped r);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
        a.Event.ts <= b.Event.ts && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "merged stream is time-sorted" true
    (nondecreasing events)

(* The disabled hot path is one atomic load: hammering it without an
   active recorder must not allocate (same budget as the Dpm_obs
   disabled-probe test). *)
let disabled_recorder_is_free () =
  Alcotest.(check bool) "no recorder active" true (Recorder.current () = None);
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Recorder.begin_ "hot";
    Recorder.instant "hot";
    Recorder.end_ "hot"
  done;
  let allocated = Gc.minor_words () -. before in
  if allocated >= 1_000.0 then
    Alcotest.failf "disabled recorder allocated %.0f minor words" allocated

(* --- provenance ------------------------------------------------------ *)

let provenance_round_trip () =
  let sys = Dpm_core.Paper_instance.system () in
  let sol = Dpm_core.Optimize.solve ~weight:1.0 sys in
  let p = sol.Dpm_core.Optimize.provenance in
  Alcotest.(check bool) "fingerprint filled in" true
    (p.Provenance.fingerprint <> 0L);
  Alcotest.(check string) "method" "policy_iteration" p.Provenance.method_;
  Alcotest.(check bool) "iterated" true (p.Provenance.iterations > 0);
  match Provenance.of_json (Provenance.to_json p) with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
      Alcotest.(check string) "fingerprint survives"
        (Provenance.fingerprint_hex p)
        (Provenance.fingerprint_hex q);
      Alcotest.(check int) "iterations survive" p.Provenance.iterations
        q.Provenance.iterations;
      Alcotest.(check string) "origin survives"
        (Provenance.origin_to_string p.Provenance.origin)
        (Provenance.origin_to_string q.Provenance.origin);
      Alcotest.(check string) "re-serialization is stable"
        (Provenance.to_json p) (Provenance.to_json q)

let provenance_collect_tallies () =
  let (), counts =
    Provenance.collect (fun () ->
        Provenance.note_robust_retry ();
        Provenance.note_tikhonov_rung ();
        Provenance.note_tikhonov_rung ();
        Provenance.note_residual 1e-9;
        Provenance.note_eval_path "sparse")
  in
  Alcotest.(check int) "retries" 1 counts.Provenance.robust_retries;
  Alcotest.(check int) "rungs" 2 counts.Provenance.tikhonov_rungs;
  let p =
    Provenance.of_counts ~method_:"policy_iteration" ~iterations:3
      ~origin:Provenance.Warm ~wall_s:0.25 counts
  in
  Alcotest.(check string) "noted eval path wins" "sparse"
    p.Provenance.eval_path;
  Alcotest.(check (float 0.0)) "noted residual wins" 1e-9
    p.Provenance.residual;
  (* Notes outside any collector must be silent no-ops. *)
  Provenance.note_fault ();
  Provenance.note_pivot ()

(* --- JSON ------------------------------------------------------------ *)

let json_parse_round_trip () =
  let doc =
    "{\"a\": [1, 2.5, null, true, false, \"x\\ny\\u00e9\"], \"b\": {\"c\": \
     -3e-2, \"d\": 1e300}}"
  in
  match Json.parse doc with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      let s = Json.to_string j in
      match Json.parse s with
      | Error e -> Alcotest.fail ("re-parse: " ^ e)
      | Ok j2 -> Alcotest.(check string) "print/parse fixpoint" s
                   (Json.to_string j2))

let json_rejects_garbage () =
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Ok _ -> Alcotest.failf "accepted %S" doc
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\": }"; "nul"; "\"unterminated"; "{} extra" ]

(* --- regression gate ------------------------------------------------- *)

let regress_self_compare_clean () =
  let series =
    [ ("a.seconds", 1.0); ("b.hit_ratio", 0.5); ("c.count", 3.0) ]
  in
  let rows = Regress.compare_series series series in
  Alcotest.(check int) "no regressions" 0
    (List.length (Regress.regressions rows));
  List.iter
    (fun r ->
      if r.Regress.verdict <> Regress.Unchanged then
        Alcotest.failf "series %s not unchanged on self-compare"
          r.Regress.name)
    rows

let regress_flags_slowdown () =
  let before = [ ("solve.seconds", 1.0); ("sim.events_per_sec", 1000.0) ] in
  (* Slower AND less throughput: both count as regressions. *)
  let worse = [ ("solve.seconds", 1.2); ("sim.events_per_sec", 800.0) ] in
  Alcotest.(check int) "both directions flag" 2
    (List.length (Regress.regressions (Regress.compare_series before worse)));
  (* Faster and more throughput: improvements never flag. *)
  let better = [ ("solve.seconds", 0.7); ("sim.events_per_sec", 1500.0) ] in
  Alcotest.(check int) "improvements do not flag" 0
    (List.length (Regress.regressions (Regress.compare_series before better)));
  (* Informational series move freely. *)
  let rows =
    Regress.compare_series [ ("pi.iterations", 4.0) ] [ ("pi.iterations", 9.0) ]
  in
  Alcotest.(check int) "informational never flags" 0
    (List.length (Regress.regressions rows))

let regress_threshold_overrides () =
  let before = [ ("solve.seconds", 1.0) ] in
  let after = [ ("solve.seconds", 1.05) ] in
  Alcotest.(check int) "within the default 10%" 0
    (List.length (Regress.regressions (Regress.compare_series before after)));
  Alcotest.(check int) "tight per-series override flags" 1
    (List.length
       (Regress.regressions
          (Regress.compare_series
             ~overrides:[ ("solve.seconds", 0.01) ]
             before after)))

let regress_extract_unwraps_envelope () =
  let doc =
    "{\"meta\": {\"git_sha\": \"abc\"}, \"metrics\": {\"lu.count\": 3, \
     \"span.solve\": {\"events\": 1, \"seconds\": 0.5}, \"resid\": \
     {\"observations\": 2, \"sum\": 1.5, \"buckets\": []}, \"bad\": null}}"
  in
  match Json.parse doc with
  | Error e -> Alcotest.fail e
  | Ok j ->
      Alcotest.(check (list (pair string (float 1e-12))))
        "flattened series"
        [ ("lu.count", 3.0); ("resid.sum", 1.5); ("span.solve.seconds", 0.5) ]
        (List.sort compare (Regress.extract j))

let suite =
  [
    t "golden Chrome JSON" `Quick golden_chrome;
    t "spans emit nested events" `Quick spans_emit_nested_events;
    t "ring drops oldest" `Quick ring_drops_oldest;
    t "merged stream sorted (1 domain)" `Quick
      (merged_stream_is_sorted ~domains:1);
    t "merged stream sorted (2 domains)" `Quick
      (merged_stream_is_sorted ~domains:2);
    t "merged stream sorted (4 domains)" `Quick
      (merged_stream_is_sorted ~domains:4);
    t "disabled recorder is free" `Quick disabled_recorder_is_free;
    t "provenance round-trip" `Quick provenance_round_trip;
    t "provenance collector tallies" `Quick provenance_collect_tallies;
    t "json parse round-trip" `Quick json_parse_round_trip;
    t "json rejects garbage" `Quick json_rejects_garbage;
    t "regress self-compare clean" `Quick regress_self_compare_clean;
    t "regress flags slowdown" `Quick regress_flags_slowdown;
    t "regress threshold overrides" `Quick regress_threshold_overrides;
    t "regress extract unwraps envelope" `Quick regress_extract_unwraps_envelope;
  ]
