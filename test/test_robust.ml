(* The Dpm_robust contract, exercised over the full fault matrix:
   every injected fault becomes a typed error or a verified fallback —
   never an uncaught exception — and a poisoned sweep point never
   takes the rest of the grid down with it. *)

open Dpm_core
open Dpm_robust

let t = Alcotest.test_case

let with_registry f =
  let reg = Dpm_obs.Metrics.create () in
  let r = Dpm_obs.Probe.with_active reg f in
  (r, reg)

let counter reg name =
  match Dpm_obs.Metrics.find reg name with
  | Some (Dpm_obs.Metrics.Counter_value n) -> n
  | _ -> 0

let choice action cost rates = { Dpm_ctmdp.Model.action; rates; cost }

(* A model whose union graph is unichain (orbit {0,1} can escape to
   the closed orbit {2,3}) but whose first-choice policy is
   multichain — the exact case the Tikhonov ladder exists for. *)
let two_orbit_model () =
  Dpm_ctmdp.Model.create ~num_states:4 (function
    | 0 -> [ choice 0 1.0 [ (1, 1.0) ]; choice 1 5.0 [ (2, 1.0) ] ]
    | 1 -> [ choice 0 1.0 [ (0, 1.0) ] ]
    | 2 -> [ choice 0 0.0 [ (3, 1.0) ] ]
    | 3 -> [ choice 0 0.0 [ (2, 1.0) ] ]
    | _ -> assert false)

let paper_model () = Sys_model.to_ctmdp (Paper_instance.system ()) ~weight:1.0

let code_of_error = function
  | Error.Invalid_model ds ->
      List.map (fun d -> d.Diagnostic.code) (Diagnostic.errors ds)
  | _ -> []

(* --- taxonomy ------------------------------------------------------- *)

(* Structural equality with NaN-tolerant residuals; plain [<>] would
   reject matching Nonconvergent payloads because nan <> nan. *)
let error_equal a b =
  match (a, b) with
  | ( Error.Nonconvergent { iterations = i1; residual = r1 },
      Error.Nonconvergent { iterations = i2; residual = r2 } ) ->
      i1 = i2 && (r1 = r2 || (Float.is_nan r1 && Float.is_nan r2))
  | _ -> a = b

let of_exn_mapping () =
  let check name exn expected =
    match (Error.of_exn exn, expected) with
    | Some got, Some want ->
        if not (error_equal got want) then
          Alcotest.failf "%s: mapped to %s, wanted %s" name
            (Error.to_string got) (Error.to_string want)
    | None, None -> ()
    | Some got, None ->
        Alcotest.failf "%s: mapped to %s, wanted re-raise" name
          (Error.to_string got)
    | None, Some want ->
        Alcotest.failf "%s: refused to map, wanted %s" name
          (Error.to_string want)
  in
  check "singular" (Dpm_linalg.Lu.Singular 3) (Some Error.Singular);
  check "cycling" (Dpm_linalg.Simplex.Cycling 7) (Some Error.Cycling);
  check "nonconvergent"
    (Failure "Policy_iteration.solve: no convergence after 42 iterations")
    (Some
       (Error.Nonconvergent { iterations = 42; residual = Float.nan }));
  check "stack-overflow" Stack_overflow None;
  check "out-of-memory" Out_of_memory None;
  (match Error.of_exn (Dpm_ctmc.Steady_state.Not_irreducible "two classes") with
  | Some (Error.Invalid_model [ d ]) ->
      Alcotest.(check string) "code" "not-unichain" d.Diagnostic.code
  | other ->
      Alcotest.failf "Not_irreducible mapped to %s"
        (match other with Some e -> Error.to_string e | None -> "re-raise"))

(* --- deadlines ------------------------------------------------------ *)

let deadline_fires_immediately () =
  let r, reg =
    with_registry (fun () ->
        Policy_iteration.solve_r ~deadline_s:0.0 (paper_model ()))
  in
  (match r with
  | Error (Error.Deadline_exceeded { budget_s; elapsed_s }) ->
      Alcotest.(check (float 0.0)) "budget" 0.0 budget_s;
      Alcotest.(check bool) "elapsed >= 0" true (elapsed_s >= 0.0)
  | Ok _ -> Alcotest.fail "zero deadline did not fire"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
  Alcotest.(check bool)
    "counter" true
    (counter reg "robust.deadline_exceeded" >= 1)

let stall_fault_caught_by_deadline () =
  let r, reg =
    with_registry (fun () ->
        Policy_iteration.solve_r ~deadline_s:0.001
          ~faults:(Fault.plan [ Fault.Stall ])
          (paper_model ()))
  in
  (match r with
  | Error (Error.Deadline_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "stalled solve finished under a 1ms deadline"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
  Alcotest.(check bool)
    "stall injected" true
    (counter reg "fault.injected.stall" >= 1)

let value_iteration_deadline () =
  match Value_iteration.solve_r ~deadline_s:0.0 (paper_model ()) with
  | Error (Error.Deadline_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "zero deadline did not fire"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let steady_state_deadline () =
  let g =
    Dpm_ctmc.Generator.of_rates ~dim:3
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0) ]
  in
  match Steady_state.solve_r ~deadline_s:0.0 g with
  | Error (Error.Deadline_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "zero deadline did not fire"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

(* --- typed solver failures ----------------------------------------- *)

let pi_tikhonov_ladder_recovers () =
  let r, reg = with_registry (fun () -> Policy_iteration.solve_r (two_orbit_model ())) in
  (match r with
  | Ok res ->
      (* The optimum parks in the free orbit {2,3}. *)
      Alcotest.(check bool)
        "gain finite" true
        (Float.is_finite res.Dpm_ctmdp.Policy_iteration.gain)
  | Error e -> Alcotest.failf "ladder did not recover: %s" (Error.to_string e));
  Alcotest.(check bool)
    "entered ladder" true
    (counter reg "policy_iteration.robust_retries" >= 1);
  Alcotest.(check bool)
    "counted rungs" true
    (counter reg "policy_iteration.tikhonov_rungs" >= 1)

let pi_iteration_budget_is_typed () =
  let m =
    Dpm_ctmdp.Model.create ~num_states:1 (fun _ ->
        [ choice 0 1.0 []; choice 1 0.0 [] ])
  in
  match Policy_iteration.solve_r ~max_iter:1 m with
  | Error (Error.Nonconvergent { iterations; _ }) ->
      Alcotest.(check int) "iterations parsed" 1 iterations
  | Ok _ -> Alcotest.fail "PI converged in one sweep on a flip-flop model"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let vi_nonconvergence_is_typed () =
  match Value_iteration.solve_r ~tol:0.0 ~max_iter:5 (paper_model ()) with
  | Error (Error.Nonconvergent { iterations; residual }) ->
      Alcotest.(check int) "iterations" 5 iterations;
      Alcotest.(check bool) "residual finite" true (Float.is_finite residual)
  | Ok _ -> Alcotest.fail "tol = 0 cannot converge"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let vi_overflow_is_non_finite () =
  let m =
    Dpm_ctmdp.Model.create ~num_states:2 (function
      | 0 -> [ choice 0 1e308 [ (1, 1.0) ] ]
      | _ -> [ choice 0 (-1e308) [ (0, 1.0) ] ])
  in
  match Value_iteration.solve_r ~max_iter:10 m with
  | Error (Error.Non_finite site) ->
      Alcotest.(check bool)
        "site names the stage" true
        (String.length site > 0)
  | Ok _ -> Alcotest.fail "1e308 costs cannot survive uniformized backups"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let lp_pivot_budget_is_cycling () =
  match Lp_solver.solve_r ~max_pivots:1 (paper_model ()) with
  | Error Error.Cycling -> ()
  | Ok _ -> Alcotest.fail "23-row phase 1 finished within the Bland retry"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let simplex_bland_retry_then_cycling () =
  let open Dpm_linalg in
  let n = 6 in
  let a = Matrix.init n n (fun i j -> if i = j then 1.0 else 0.0) in
  let b = Vec.init n (fun _ -> 1.0) in
  let c = Vec.create n in
  let r, reg =
    with_registry (fun () ->
        match Simplex.minimize ~max_pivots:1 ~c ~a b with
        | outcome -> Ok outcome
        | exception Simplex.Cycling pivots -> Error pivots)
  in
  (match r with
  | Error pivots -> Alcotest.(check bool) "pivot count" true (pivots >= 1)
  | Ok _ -> Alcotest.fail "6 structural pivots fit in a budget of 1");
  Alcotest.(check bool)
    "bland retry counted" true
    (counter reg "simplex.bland_retries" >= 1)

let steady_state_two_classes_is_invalid () =
  let g =
    Dpm_ctmc.Generator.of_rates ~dim:4
      [ (0, 1, 1.0); (1, 0, 1.0); (2, 3, 1.0); (3, 2, 1.0) ]
  in
  match Steady_state.solve_r g with
  | Error (Error.Invalid_model ds) ->
      Alcotest.(check bool)
        "not-unichain diagnostic" true
        (List.exists (fun d -> d.Diagnostic.code = "not-unichain") ds)
  | Ok _ -> Alcotest.fail "two closed classes accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let steady_state_happy_path_verifies () =
  let g =
    Dpm_ctmc.Generator.of_rates ~dim:3
      [ (0, 1, 2.0); (1, 0, 1.0); (1, 2, 1.0); (2, 0, 3.0) ]
  in
  match Steady_state.solve_r g with
  | Ok p ->
      let sum = Array.fold_left ( +. ) 0.0 p in
      Alcotest.(check (float 1e-9)) "normalized" 1.0 sum
  | Error e -> Alcotest.failf "valid chain rejected: %s" (Error.to_string e)

(* --- validation ----------------------------------------------------- *)

let paper_instance_validates_clean () =
  let sys = Paper_instance.system () in
  let diags = Validate.system sys in
  (match Diagnostic.errors diags with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "paper instance rejected: %s" (Diagnostic.to_string d));
  match
    Validate.model_r ~num_states:(Sys_model.num_states sys)
      (Validate.system_choices sys ~weight:1.0)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "paper choices rejected: %s" (Error.to_string e)

let map_costs_poison_is_caught () =
  (* map_costs skips re-validation by design; the robust layer's
     pre-solve pass is what stands between a NaN cost and the
     solver. *)
  let m =
    Dpm_ctmdp.Model.map_costs
      (fun i _ -> if i = 2 then Float.nan else 0.0)
      (paper_model ())
  in
  match Policy_iteration.solve_r m with
  | Error (Error.Invalid_model ds) ->
      Alcotest.(check bool)
        "non-finite-cost diagnostic" true
        (List.exists (fun d -> d.Diagnostic.code = "non-finite-cost") ds)
  | Ok _ -> Alcotest.fail "NaN cost survived validation"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let validate_reports_all_findings () =
  (* Three independent corruptions -> three findings in one report. *)
  let bad = function
    | 0 -> [ choice 0 Float.nan [ (1, 1.0) ] ]
    | 1 -> [ choice 0 0.0 [ (0, -2.0) ] ]
    | 2 -> []
    | _ -> [ choice 0 0.0 [ (0, 1.0) ] ]
  in
  let diags = Validate.choices ~num_states:4 bad in
  let codes = List.map (fun d -> d.Diagnostic.code) (Diagnostic.errors diags) in
  List.iter
    (fun want ->
      Alcotest.(check bool) want true (List.mem want codes))
    [ "non-finite-cost"; "bad-rate"; "empty-choice" ]

let generator_matrix_diagnostics () =
  let open Dpm_linalg in
  let g =
    Dpm_ctmc.Generator.of_rates ~dim:3
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0) ]
  in
  let m = Dpm_ctmc.Generator.to_matrix g in
  Alcotest.(check (list string))
    "clean matrix" []
    (List.map Diagnostic.to_string
       (Diagnostic.errors (Validate.generator_matrix m)));
  let nan_m = Fault.corrupt_matrix (Fault.plan [ Fault.Nan_entry ]) m in
  Alcotest.(check bool)
    "nan entry found" true
    (List.exists
       (fun d -> d.Diagnostic.code = "non-finite-entry")
       (Validate.generator_matrix nan_m));
  let neg = Matrix.copy m in
  Matrix.set neg 0 1 (-0.5);
  let codes = List.map (fun d -> d.Diagnostic.code) (Validate.generator_matrix neg) in
  Alcotest.(check bool) "negative rate" true (List.mem "negative-rate" codes);
  Alcotest.(check bool) "row sum" true (List.mem "row-sum" codes)

(* --- the fault matrix ----------------------------------------------- *)

let expected_code = function
  | Fault.Nan_rate | Fault.Negative_rate -> "bad-rate"
  | Fault.Nan_cost -> "non-finite-cost"
  | Fault.Empty_choice -> "empty-choice"
  | Fault.Bad_target -> "bad-target"
  | Fault.Duplicate_action -> "duplicate-action"
  | Fault.Zero_row | Fault.Nan_entry | Fault.Duplicate_row | Fault.Stall ->
      assert false

let model_fault_matrix () =
  let sys = Paper_instance.system () in
  let n = Sys_model.num_states sys in
  let raw = Validate.system_choices sys ~weight:1.0 in
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let plan = Fault.plan ~seed:(Int64.of_int seed) [ kind ] in
          let corrupted = Fault.corrupt_choices plan ~num_states:n raw in
          match Validate.model_r ~num_states:n corrupted with
          | Error (Error.Invalid_model ds) ->
              let want = expected_code kind in
              if
                not
                  (List.exists (fun d -> d.Diagnostic.code = want)
                     (Diagnostic.errors ds))
              then
                Alcotest.failf "%s seed %d: no %s diagnostic in %s"
                  (Fault.kind_to_string kind) seed want
                  (String.concat "; " (List.map Diagnostic.to_string ds))
          | Error e ->
              Alcotest.failf "%s seed %d: wrong error class %s"
                (Fault.kind_to_string kind) seed (Error.to_string e)
          | Ok _ ->
              Alcotest.failf "%s seed %d: corrupted model escaped validation"
                (Fault.kind_to_string kind) seed)
        [ 1; 2; 3; 4; 5; 6; 7 ])
    [
      Fault.Nan_rate;
      Fault.Negative_rate;
      Fault.Nan_cost;
      Fault.Empty_choice;
      Fault.Bad_target;
      Fault.Duplicate_action;
    ]

let matrix_fault_matrix () =
  let sys = Paper_instance.system () in
  let base = Sys_model.uniform_generator sys ~action:0 in
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let plan = Fault.plan ~seed:(Int64.of_int seed) [ kind ] in
          let corrupted = Fault.corrupt_matrix plan base in
          (* The contract under the matrix faults: a typed verdict,
             never an uncaught exception.  NaN entries must be
             rejected; a zeroed row is a legal absorbing state; a
             duplicated row keeps the generator property. *)
          match Steady_state.of_matrix_r corrupted with
          | Ok g -> (
              match Steady_state.solve_r g with
              | Ok _ | Error _ -> ())
          | Error (Error.Invalid_model _) ->
              if kind = Fault.Zero_row then
                Alcotest.failf "zero-row (absorbing) wrongly rejected, seed %d"
                  seed
          | Error e ->
              Alcotest.failf "%s seed %d: wrong error class %s"
                (Fault.kind_to_string kind) seed (Error.to_string e))
        [ 1; 2; 3; 4; 5 ])
    [ Fault.Zero_row; Fault.Nan_entry; Fault.Duplicate_row ]

let nan_entry_always_rejected () =
  let sys = Paper_instance.system () in
  let base = Sys_model.uniform_generator sys ~action:0 in
  List.iter
    (fun seed ->
      let plan = Fault.plan ~seed:(Int64.of_int seed) [ Fault.Nan_entry ] in
      match Steady_state.of_matrix_r (Fault.corrupt_matrix plan base) with
      | Error (Error.Invalid_model _) -> ()
      | Ok _ -> Alcotest.failf "NaN entry accepted, seed %d" seed
      | Error e ->
          Alcotest.failf "NaN entry: wrong error class %s (seed %d)"
            (Error.to_string e) seed)
    [ 1; 2; 3; 4; 5 ]

(* --- degrade-gracefully sweeps -------------------------------------- *)

let poisoned_sweep_keeps_other_points () =
  let sys = Paper_instance.system () in
  let weights = [ 0.5; Float.nan; 2.0 ] in
  let results, reg =
    with_registry (fun () -> Optimize.sweep_r ~domains:2 sys ~weights)
  in
  (match results with
  | [ (_, Ok a); (w, Error _); (_, Ok b) ] ->
      Alcotest.(check bool) "poisoned weight" true (Float.is_nan w);
      Alcotest.(check bool)
        "solutions ordered" true
        (a.Optimize.weight = 0.5 && b.Optimize.weight = 2.0)
  | _ -> Alcotest.fail "expected [Ok; Error; Ok] in weight order");
  Alcotest.(check int) "one failure counted" 1 (counter reg "par.item_failures")

let poisoned_sweep_raises_in_strict_api () =
  let sys = Paper_instance.system () in
  match Optimize.sweep sys ~weights:[ 0.5; Float.nan ] with
  | _ -> Alcotest.fail "strict sweep must re-raise the poisoned point"
  | exception Invalid_argument _ -> ()

let sweep_r_matches_sweep () =
  let sys = Paper_instance.system () in
  let weights = [ 0.5; 2.0 ] in
  let strict = Optimize.sweep sys ~weights in
  let fenced =
    List.map
      (fun (_, r) -> match r with Ok s -> s | Error _ -> assert false)
      (Optimize.sweep_r sys ~weights)
  in
  List.iter2
    (fun (a : Optimize.solution) (b : Optimize.solution) ->
      Alcotest.(check (float 1e-12)) "same gain" a.Optimize.gain b.Optimize.gain)
    strict fenced

let rate_sweep_r_happy_path () =
  let sys = Paper_instance.system () in
  let sol = Optimize.solve ~weight:1.0 sys in
  let rates = [ 0.1; 0.25 ] in
  let rs =
    Sensitivity.rate_sweep_r sys ~actions:sol.Optimize.actions ~weight:1.0
      ~rates
  in
  Alcotest.(check int) "grid size" 2 (List.length rs);
  List.iter2
    (fun want (got, r) ->
      Alcotest.(check (float 0.0)) "rate order" want got;
      match r with
      | Ok p -> Alcotest.(check (float 0.0)) "point rate" want p.Sensitivity.rate
      | Error exn -> raise exn)
    rates rs

let parallel_map_result_contains_failures () =
  List.iter
    (fun domains ->
      let rs =
        Dpm_par.parallel_map_result ~domains
          (fun i -> if i mod 2 = 0 then failwith "even" else i * i)
          (Array.init 10 Fun.id)
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v when i mod 2 = 1 -> Alcotest.(check int) "value" (i * i) v
          | Error (Failure msg) when i mod 2 = 0 ->
              Alcotest.(check string) "message" "even" msg
          | Ok _ -> Alcotest.failf "slot %d: even index succeeded" i
          | Error _ -> Alcotest.failf "slot %d: wrong failure" i)
        rs)
    [ 1; 4 ]

let suite =
  [
    t "error.of_exn mapping" `Quick of_exn_mapping;
    t "deadline fires immediately at budget 0" `Quick deadline_fires_immediately;
    t "injected stall is caught by the deadline" `Quick
      stall_fault_caught_by_deadline;
    t "value iteration honors deadlines" `Quick value_iteration_deadline;
    t "steady state honors deadlines" `Quick steady_state_deadline;
    t "PI multichain policy recovers via Tikhonov ladder" `Quick
      pi_tikhonov_ladder_recovers;
    t "PI iteration budget maps to Nonconvergent" `Quick
      pi_iteration_budget_is_typed;
    t "VI non-convergence maps to Nonconvergent" `Quick
      vi_nonconvergence_is_typed;
    t "VI overflow maps to Non_finite" `Quick vi_overflow_is_non_finite;
    t "LP pivot budget maps to Cycling" `Quick lp_pivot_budget_is_cycling;
    t "simplex retries under Bland then raises Cycling" `Quick
      simplex_bland_retry_then_cycling;
    t "steady state: two closed classes are Invalid_model" `Quick
      steady_state_two_classes_is_invalid;
    t "steady state: valid chain verifies" `Quick
      steady_state_happy_path_verifies;
    t "paper instance validates clean" `Quick paper_instance_validates_clean;
    t "map_costs NaN poison is caught pre-solve" `Quick
      map_costs_poison_is_caught;
    t "validation reports all findings at once" `Quick
      validate_reports_all_findings;
    t "generator matrix diagnostics" `Quick generator_matrix_diagnostics;
    t "fault matrix: every model fault is typed" `Quick model_fault_matrix;
    t "fault matrix: matrix faults never escape" `Quick matrix_fault_matrix;
    t "fault matrix: NaN entries always rejected" `Quick
      nan_entry_always_rejected;
    t "poisoned sweep keeps the other grid points" `Quick
      poisoned_sweep_keeps_other_points;
    t "strict sweep re-raises the poisoned point" `Quick
      poisoned_sweep_raises_in_strict_api;
    t "sweep_r agrees with sweep" `Quick sweep_r_matches_sweep;
    t "rate_sweep_r happy path" `Quick rate_sweep_r_happy_path;
    t "parallel_map_result contains failures per item" `Quick
      parallel_map_result_contains_failures;
  ]
