(* Dpm_cache: structural fingerprints, the LRU, warm starts, and the
   cached/warm-started Optimize layer.  Everything here runs against a
   scoped cache (Solve_cache.with_capacity) so tests neither see nor
   leave global cache state. *)

open Dpm_core
module Model = Dpm_ctmdp.Model
module Policy = Dpm_ctmdp.Policy
module Pi = Dpm_ctmdp.Policy_iteration
module Fingerprint = Dpm_cache.Fingerprint
module Lru = Dpm_cache.Lru
module Warm = Dpm_cache.Warm
module Solve_cache = Dpm_cache.Solve_cache

(* A small hand-built model with room for permutation: 3 states, two
   choices each, multi-entry rate lists. *)
let base_choices i =
  let open Model in
  match i with
  | 0 ->
      [
        { action = 0; rates = [ (1, 0.5); (2, 0.25) ]; cost = 1.0 };
        { action = 1; rates = [ (2, 2.0) ]; cost = 0.5 };
      ]
  | 1 ->
      [
        { action = 0; rates = [ (0, 1.0); (2, 0.75) ]; cost = 2.0 };
        { action = 1; rates = [ (0, 0.25) ]; cost = 0.25 };
      ]
  | _ ->
      [
        { action = 0; rates = [ (0, 3.0) ]; cost = 0.0 };
        { action = 1; rates = [ (1, 1.5); (0, 0.5) ]; cost = 4.0 };
      ]

let base_model () = Model.create ~num_states:3 base_choices

(* The same decision process with every list order scrambled: choices
   reversed, rate lists reversed, one rate split into two summands
   that add back exactly, plus an explicit zero rate. *)
let permuted_model () =
  let open Model in
  let permute i =
    base_choices i
    |> List.rev_map (fun c ->
           let rates =
             match c.rates with
             | [ (j, r) ] when i = 0 && c.action = 1 ->
                 (* 2.0 = 1.25 + 0.75 exactly in binary *)
                 [ (j, 0.75); (j, r -. 0.75) ]
             | rates -> List.rev rates
           in
           { c with rates = rates @ [ ((i + 1) mod 3, 0.0) ] })
  in
  Model.create ~num_states:3 permute

let fingerprint_permutation () =
  let a = base_model () and b = permuted_model () in
  Alcotest.(check string)
    "canonical encodings equal" (Fingerprint.model a) (Fingerprint.model b);
  Alcotest.(check int64)
    "hashes equal" (Fingerprint.model_hash a) (Fingerprint.model_hash b);
  Alcotest.(check string)
    "full keys equal" (Fingerprint.key a) (Fingerprint.key b)

let fingerprint_perturbation () =
  let a = base_model () in
  let perturb_cost i =
    Model.create ~num_states:3 (fun s ->
        base_choices s
        |> List.map (fun (c : Model.choice) ->
               if s = i then { c with Model.cost = Float.succ c.Model.cost }
               else c))
  in
  let perturb_rate () =
    Model.create ~num_states:3 (fun s ->
        base_choices s
        |> List.map (fun (c : Model.choice) ->
               {
                 c with
                 Model.rates =
                   List.map (fun (j, r) -> (j, Float.succ r)) c.Model.rates;
               }))
  in
  let relabel () =
    Model.create ~num_states:3 (fun s ->
        base_choices s
        |> List.map (fun (c : Model.choice) ->
               { c with Model.action = c.Model.action + 10 }))
  in
  let h = Fingerprint.model_hash a in
  List.iteri
    (fun k m ->
      if Fingerprint.model_hash m = h then
        Alcotest.failf "perturbation %d did not change the hash" k)
    [ perturb_cost 1; perturb_rate (); relabel () ];
  (* Same model under a different solver configuration: same model
     hash, different cache key. *)
  let config =
    { Fingerprint.default_config with Fingerprint.ref_state = 1 }
  in
  if Fingerprint.key ~config a = Fingerprint.key a then
    Alcotest.fail "solver config is not part of the key"

let lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  ignore (Lru.add c "a" 1);
  ignore (Lru.add c "b" 2);
  ignore (Lru.add c "c" 3);
  (* Refresh "a" so "b" is now least recently used. *)
  Alcotest.(check (option int)) "a hits" (Some 1) (Lru.find c "a");
  let evicted = Lru.add c "d" 4 in
  Alcotest.(check bool) "adding d evicts" true evicted;
  Alcotest.(check (option int)) "b was evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c survives" (Some 3) (Lru.find c "c");
  Alcotest.(check (option int)) "d present" (Some 4) (Lru.find c "d");
  let s = Lru.stats c in
  Alcotest.(check int) "one eviction" 1 s.Lru.evictions;
  Alcotest.(check int) "size at capacity" 3 s.Lru.size

let lru_counters () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (option int)) "miss on empty" None (Lru.find c "x");
  ignore (Lru.add c "x" 1);
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.find c "x");
  Alcotest.(check (option int)) "second miss" None (Lru.find c "y");
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 1 s.Lru.hits;
  Alcotest.(check int) "misses" 2 s.Lru.misses;
  (* Capacity 0: never stores, never evicts. *)
  let z = Lru.create ~capacity:0 in
  Alcotest.(check bool) "capacity-0 add is a no-op" false (Lru.add z "x" 1);
  Alcotest.(check (option int)) "capacity-0 always misses" None (Lru.find z "x");
  Test_util.check_raises_invalid "negative capacity" (fun () ->
      Lru.create ~capacity:(-1))

let solve_cache_roundtrip () =
  Solve_cache.with_capacity 8 @@ fun () ->
  let m = base_model () in
  let first = Solve_cache.solve m in
  let second = Solve_cache.solve m in
  Alcotest.(check bool)
    "same policy" true
    (Policy.equal first.Pi.policy second.Pi.policy);
  Alcotest.(check (float 0.0)) "gain bit-identical" first.Pi.gain second.Pi.gain;
  Alcotest.(check int) "iterations preserved" first.Pi.iterations
    second.Pi.iterations;
  let s = Solve_cache.stats () in
  Alcotest.(check int) "one miss" 1 s.Lru.misses;
  Alcotest.(check int) "one hit" 1 s.Lru.hits;
  (* A permuted-but-equal model must hit, and the returned policy must
     be valid for (rebuilt against) the permuted instance. *)
  let p = permuted_model () in
  (match Solve_cache.find p with
  | None -> Alcotest.fail "permuted model missed the cache"
  | Some r ->
      Alcotest.(check bool)
        "rebuilt policy selects the same actions" true
        (Policy.actions p r.Pi.policy = Policy.actions m first.Pi.policy));
  (* Mutating the returned bias must not corrupt the cached entry. *)
  let r1 = Solve_cache.solve m in
  r1.Pi.bias.(0) <- 1e9;
  let r2 = Solve_cache.solve m in
  if r2.Pi.bias.(0) = 1e9 then Alcotest.fail "cached bias was aliased"

let waves_schedule () =
  Alcotest.(check int) "n=0 empty" 0 (List.length (Warm.waves 0));
  (match Warm.waves 1 with
  | [ [| (0, None) |] ] -> ()
  | _ -> Alcotest.fail "n=1 schedule");
  List.iter
    (fun n ->
      let waves = Warm.waves n in
      let solved = Array.make n false in
      List.iter
        (fun wave ->
          Array.iter
            (fun (k, src) ->
              if k < 0 || k >= n then Alcotest.failf "point %d out of range" k;
              if solved.(k) then Alcotest.failf "point %d scheduled twice" k;
              (match src with
              | None -> ()
              | Some j ->
                  if not solved.(j) then
                    Alcotest.failf "point %d seeded from unsolved %d" k j);
              ())
            wave;
          (* Seeds resolve against previous waves only; mark after. *)
          Array.iter (fun (k, _) -> solved.(k) <- true) wave)
        waves;
      Array.iteri
        (fun k s -> if not s then Alcotest.failf "point %d never scheduled" k)
        solved;
      (* Pure function of n. *)
      if Warm.waves n <> waves then Alcotest.fail "schedule not deterministic")
    [ 2; 3; 5; 11; 16 ]

let warm_init_validation () =
  let m = base_model () in
  Alcotest.(check bool)
    "wrong length falls back" true
    (Warm.init_of_actions m [| 0; 1 |] = None);
  Alcotest.(check bool)
    "unknown label falls back" true
    (Warm.init_of_actions m [| 0; 7; 1 |] = None);
  match Warm.init_of_actions m [| 1; 0; 1 |] with
  | None -> Alcotest.fail "valid table rejected"
  | Some p ->
      Alcotest.(check bool)
        "labels resolved" true
        (Policy.actions m p = [| 1; 0; 1 |])

let weights_11 =
  List.init 11 (fun k -> 0.1 *. ((500.0 /. 0.1) ** (float_of_int k /. 10.0)))

let check_warm_equals_cold ?(weights = weights_11) sys =
  Solve_cache.with_capacity 0 @@ fun () ->
  let cold = Optimize.sweep ~warm:false sys ~weights in
  let warm = Optimize.sweep sys ~weights in
  List.iter2
    (fun (c : Optimize.solution) (w : Optimize.solution) ->
      if c.Optimize.actions <> w.Optimize.actions then
        Alcotest.failf "policies differ at weight %g" c.Optimize.weight;
      Test_util.check_close ~tol:1e-12
        (Printf.sprintf "gain at weight %g" c.Optimize.weight)
        c.Optimize.gain w.Optimize.gain)
    cold warm

let warm_equals_cold_paper () =
  check_warm_equals_cold (Paper_instance.system ())

let warm_equals_cold_random =
  Test_util.qtest ~count:50 "warm sweep equals cold sweep on random systems"
    Test_random_systems.sys_gen
    (fun sys ->
      check_warm_equals_cold ~weights:[ 0.2; 0.7; 2.0; 8.0; 50.0 ] sys;
      true)

let domain_safety () =
  Solve_cache.with_capacity 32 @@ fun () ->
  let sys = Paper_instance.system () in
  let weights = [ 0.2; 1.0; 5.0; 20.0; 100.0 ] in
  (* Modulo provenance: the repeat sweep is served from the cache, so
     its wall clock and origin differ by design. *)
  let sweep d =
    List.map Test_util.strip_provenance (Optimize.sweep ~domains:d sys ~weights)
  in
  let first = sweep 4 in
  let second = sweep 4 in
  if first <> second then
    Alcotest.fail "4-domain cached sweep is not reproducible";
  let sequential = sweep 1 in
  if first <> sequential then
    Alcotest.fail "4-domain sweep differs from sequential";
  let s = Solve_cache.stats () in
  if s.Lru.hits < List.length weights then
    Alcotest.failf "expected the repeat sweeps to hit, got %d hits" s.Lru.hits

let sweep_hit_ratio () =
  (* The @cache-verify contract: a 5-point sweep with one duplicated
     weight has a nonzero hit ratio. *)
  Solve_cache.with_capacity 16 @@ fun () ->
  let sys = Paper_instance.system () in
  let _ = Optimize.sweep sys ~weights:[ 0.2; 1.0; 1.0; 5.0; 20.0 ] in
  if not (Solve_cache.hit_ratio () > 0.0) then
    Alcotest.failf "expected a nonzero hit ratio, got %g"
      (Solve_cache.hit_ratio ())

let value_iteration_warm_start () =
  (* The paper SP with the big-M self-switch rate lowered to 1e3: VI
     contracts at O(real rates / M) per sweep, so the default 1e6
     would not converge in any reasonable iteration budget. *)
  let sys =
    Sys_model.create ~self_switch_rate:1e3
      ~sp:(Paper_instance.service_provider ())
      ~queue_capacity:Paper_instance.queue_capacity
      ~arrival_rate:Paper_instance.arrival_rate ()
  in
  let m = Sys_model.to_ctmdp sys ~weight:1.0 in
  let cold = Dpm_ctmdp.Value_iteration.solve ~tol:1e-10 ~max_iter:200_000 m in
  let warm =
    Dpm_ctmdp.Value_iteration.solve ~tol:1e-10 ~max_iter:200_000
      ~init_values:cold.Dpm_ctmdp.Value_iteration.values m
  in
  Alcotest.(check bool)
    "warm VI converged" true warm.Dpm_ctmdp.Value_iteration.converged;
  Alcotest.(check bool)
    "warm VI is faster" true
    (warm.Dpm_ctmdp.Value_iteration.iterations
    <= cold.Dpm_ctmdp.Value_iteration.iterations);
  Alcotest.(check bool)
    "same policy" true
    (Policy.equal warm.Dpm_ctmdp.Value_iteration.policy
       cold.Dpm_ctmdp.Value_iteration.policy);
  Test_util.check_raises_invalid "dimension mismatch" (fun () ->
      Dpm_ctmdp.Value_iteration.solve
        ~init_values:(Dpm_linalg.Vec.create 2)
        m)

let suite =
  [
    Alcotest.test_case "fingerprint: permuted models collide" `Quick
      fingerprint_permutation;
    Alcotest.test_case "fingerprint: perturbed models differ" `Quick
      fingerprint_perturbation;
    Alcotest.test_case "lru: eviction follows recency" `Quick
      lru_eviction_order;
    Alcotest.test_case "lru: hit/miss counters" `Quick lru_counters;
    Alcotest.test_case "solve cache: roundtrip, permutation hit, isolation"
      `Quick solve_cache_roundtrip;
    Alcotest.test_case "warm: wave schedule is a valid function of n" `Quick
      waves_schedule;
    Alcotest.test_case "warm: action-table validation" `Quick
      warm_init_validation;
    Alcotest.test_case "warm sweep equals cold sweep (paper instance)" `Quick
      warm_equals_cold_paper;
    warm_equals_cold_random;
    Alcotest.test_case "cached sweep is domain-safe and reproducible" `Quick
      domain_safety;
    Alcotest.test_case "duplicated weight yields a nonzero hit ratio" `Quick
      sweep_hit_ratio;
    Alcotest.test_case "value iteration warm start" `Quick
      value_iteration_warm_start;
  ]
