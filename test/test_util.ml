(* Shared helpers for the test suite. *)

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %g)" msg expected actual
      tol

(* Relative comparison for statistical quantities. *)
let check_relative ~rel msg expected actual =
  if expected = 0.0 then check_close ~tol:rel msg expected actual
  else if Float.abs ((actual -. expected) /. expected) > rel then
    Alcotest.failf "%s: expected %.6g, got %.6g (relative tol %g)" msg expected
      actual rel

let check_vec ?(tol = 1e-9) msg expected actual =
  if not (Dpm_linalg.Vec.approx_equal ~tol expected actual) then
    Alcotest.failf "%s: vectors differ:@ %a@ vs@ %a" msg Dpm_linalg.Vec.pp
      expected Dpm_linalg.Vec.pp actual

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let qtest ?(count = 200) ?print name gen prop =
  (* A fixed generator seed keeps property tests reproducible run to
     run; statistical properties (simulation vs model) would otherwise
     flake on whichever random system a fresh seed dreams up. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; String.length name |])
    (QCheck2.Test.make ?print ~count ~name gen prop)

(* A reproducible RNG for tests that need raw randomness. *)
let rng () = Dpm_prob.Rng.create 20260705L

(* Provenance is timing metadata (wall clock, cache origin): two
   otherwise-identical solutions legitimately differ in it.  Tests
   that assert solver determinism compare solutions modulo
   provenance. *)
let neutral_provenance =
  {
    Dpm_trace.Provenance.fingerprint = 0L;
    method_ = "";
    eval_path = "";
    iterations = 0;
    residual = 0.0;
    origin = Dpm_trace.Provenance.Cold;
    robust_retries = 0;
    tikhonov_rungs = 0;
    sparse_fallbacks = 0;
    faults_injected = 0;
    deadline_s = None;
    wall_s = 0.0;
    weight = 0.0;
    arrival_rate = 0.0;
  }

let strip_provenance (sol : Dpm_core.Optimize.solution) =
  { sol with Dpm_core.Optimize.provenance = neutral_provenance }
