(* The scenario layer's trust anchors:

   - degeneracy: an Erlang-1 phase expansion and a batch-1 batching
     model must be *bit-identical* to the plain paper system — same
     fingerprint, shared cache entries, and the golden pins must
     reproduce through them;
   - independence: the K = 2 polling optimum is cross-checked against
     a closed-loop chain rebuilt in this file from the polling
     physics alone (GTH stationary gain — a numerical path disjoint
     from policy iteration's bias equations);
   - determinism: scenario sweeps are bit-identical at 1, 2 and 4
     domains. *)

open Dpm_core
open Dpm_scenario

let fingerprint = Dpm_cache.Fingerprint.model
let bits = Int64.bits_of_float

let ok_exn site = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" site (Dpm_robust.Error.to_string e)

(* --- Phase_type ------------------------------------------------------ *)

let phase_type_fit () =
  let check_fit mean scv =
    let d = Phase_type.fit ~mean ~scv in
    Test_util.check_close ~tol:1e-12
      (Printf.sprintf "fitted mean at scv=%g" scv)
      mean (Phase_type.mean d);
    d
  in
  (match check_fit 1.5 1.0 with
  | Phase_type.Exp _ -> ()
  | d -> Alcotest.failf "scv=1 should fit Exp, got %s" (Phase_type.to_spec d));
  (match check_fit 2.0 0.25 with
  | Phase_type.Erlang (4, _) as d ->
      Test_util.check_close ~tol:1e-12 "erlang scv" 0.25 (Phase_type.scv d)
  | d -> Alcotest.failf "scv=0.25 should fit Erlang-4, got %s" (Phase_type.to_spec d));
  (match check_fit 0.7 3.0 with
  | Phase_type.Hyper2 _ as d ->
      (* The balanced-means H2 matches the second moment exactly. *)
      Test_util.check_close ~tol:1e-9 "hyper2 scv" 3.0 (Phase_type.scv d)
  | d -> Alcotest.failf "scv=3 should fit Hyper2, got %s" (Phase_type.to_spec d));
  (* Erlang-1 *is* Exp — the bit-identity tests below lean on it. *)
  if Phase_type.erlang 1 0.5 <> Phase_type.exp_ 0.5 then
    Alcotest.fail "erlang 1 r should normalize to Exp r"

let phase_type_views () =
  List.iter
    (fun spec ->
      match Phase_type.of_spec spec with
      | Error e -> Alcotest.failf "of_spec %s: %s" spec e
      | Ok d ->
          let total =
            List.fold_left (fun a (_, p) -> a +. p) 0.0 (Phase_type.init d)
          in
          Test_util.check_close ~tol:1e-12
            (Printf.sprintf "init mass of %s" spec)
            1.0 total;
          (* Every phase must make progress: advance or absorb. *)
          for phase = 0 to Phase_type.phases d - 1 do
            let moves = Phase_type.advance d phase <> None in
            let absorbs = Phase_type.completion_rate d phase > 0.0 in
            if not (moves || absorbs) then
              Alcotest.failf "%s phase %d is absorbing" spec phase
          done;
          (match Phase_type.of_spec (Phase_type.to_spec d) with
          | Ok d' when d' = d -> ()
          | Ok d' ->
              Alcotest.failf "spec roundtrip drifted: %s -> %s" spec
                (Phase_type.to_spec d')
          | Error e -> Alcotest.failf "spec roundtrip of %s: %s" spec e))
    [ "exp:0.667"; "erlang:4:2.5"; "hyper2:0.3:2.0:0.5"; "fit:1.5:4.0" ];
  List.iter
    (fun spec ->
      match Phase_type.of_spec spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "of_spec accepted %S" spec)
    [ ""; "exp:0"; "erlang:0:1"; "hyper2:1.5:1:1"; "fit:1:-2"; "weibull:1" ]

let phase_type_invalid () =
  Test_util.check_raises_invalid "exp 0" (fun () -> Phase_type.exp_ 0.0);
  Test_util.check_raises_invalid "erlang 0" (fun () -> Phase_type.erlang 0 1.0);
  Test_util.check_raises_invalid "hyper2 p=1" (fun () ->
      Phase_type.hyper2 ~p:1.0 ~rate1:1.0 ~rate2:2.0);
  Test_util.check_raises_invalid "fit scv<=0" (fun () ->
      Phase_type.fit ~mean:1.0 ~scv:0.0)

(* --- Phased: Erlang-1 degeneracy and Erlang-k solves ----------------- *)

let paper_phased ?(service = Phase_type.exp_ Paper_instance.service_rate) () =
  Phased.create
    ~sp:(Paper_instance.service_provider ())
    ~queue_capacity:Paper_instance.queue_capacity
    ~arrival_rate:Paper_instance.arrival_rate ~service ()

let prop_erlang1_bit_identity =
  Test_util.qtest ~count:40 "Erlang-1 expansion is bit-identical to the SYS"
    QCheck2.Gen.(
      int_range 1 5 >>= fun queue_capacity ->
      float_range 0.05 1.0 >>= fun arrival_rate ->
      float_range 0.0 20.0 >>= fun weight ->
      return (queue_capacity, arrival_rate, weight))
    (fun (queue_capacity, arrival_rate, weight) ->
      let sp = Paper_instance.service_provider () in
      let mu =
        Service_provider.service_rate sp (List.hd (Service_provider.active_modes sp))
      in
      let sys = Sys_model.create ~sp ~queue_capacity ~arrival_rate () in
      let ph =
        Phased.create ~sp ~queue_capacity ~arrival_rate
          ~service:(Phase_type.erlang 1 mu) ()
      in
      fingerprint (Sys_model.to_ctmdp sys ~weight)
      = fingerprint (Phased.to_ctmdp ph ~weight))

let degenerate_models_share_cache () =
  Dpm_cache.Solve_cache.with_capacity 8 @@ fun () ->
  let sys = Paper_instance.system () in
  (* Populate the cache through the paper's own driver... *)
  let base = Optimize.solve ~weight:1.0 sys in
  (* ...then both degenerate scenario models must hit its entry. *)
  let check_hit name model =
    let s = ok_exn name (Solve.solve model) in
    if s.Solve.provenance.Dpm_trace.Provenance.origin <> Dpm_trace.Provenance.Cache_hit
    then Alcotest.failf "%s did not hit the base system's cache entry" name;
    if s.Solve.actions <> base.Optimize.actions then
      Alcotest.failf "%s: cached policy differs from the base optimum" name;
    Test_util.check_close ~tol:0.0 (name ^ " gain") base.Optimize.gain
      s.Solve.gain
  in
  check_hit "erlang-1 phased" (Phased.to_ctmdp (paper_phased ()) ~weight:1.0);
  let b =
    Batching.create ~sys ~max_batch:1
      ~service_rate:(fun _ -> Paper_instance.service_rate)
      ()
  in
  check_hit "batch-1 batching" (Batching.to_ctmdp b ~weight:1.0)

let erlang_k_and_hyper2_solve () =
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  List.iter
    (fun (label, scv) ->
      let service = Phase_type.fit ~mean:1.5 ~scv in
      let ph = paper_phased ~service () in
      let m = Phased.to_ctmdp ph ~weight:1.0 in
      Alcotest.(check int)
        (label ^ " state count")
        (23 + ((Phase_type.phases service - 1) * Paper_instance.queue_capacity))
        (Dpm_ctmdp.Model.num_states m);
      (match Dpm_robust.Policy_iteration.validate_model m with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s rejected: %s" label (Dpm_robust.Error.to_string e));
      let s = ok_exn label (Solve.solve m) in
      (* Cross-check the optimum's gain against the closed-loop
         stationary distribution — an independent numerical path. *)
      let gain' = Solve.stationary_gain m ~actions:s.Solve.actions in
      Test_util.check_relative ~rel:1e-9 (label ^ " gain vs GTH") s.Solve.gain
        gain')
    [ ("erlang-4 service", 0.25); ("hyper2 service", 4.0) ]

(* --- Polling: the independent K = 2 oracle --------------------------- *)

let polling_powers =
  (* Passed explicitly so the oracle below shares them by construction. *)
  (2.3, 0.95, 0.95, 0.13)

let two_queue ?(loss_penalty = 0.5) ?(lam = (0.25, 0.4)) ?(caps = (2, 2))
    ?(mus = (1.0, 1.4)) ?(chis = (4.0, 6.0)) () =
  let serve_power, idle_power, switch_power, sleep_power = polling_powers in
  let l0, l1 = lam and c0, c1 = caps and m0, m1 = mus and x0, x1 = chis in
  Polling.create ~dispatch_rate:1e6 ~loss_penalty ~serve_power ~idle_power
    ~switch_power ~sleep_power
    [
      Polling.queue ~arrival_rate:l0 ~capacity:c0
        ~service:(Phase_type.exp_ m0) ~switch_over:(Phase_type.exp_ x0) ();
      Polling.queue ~weight:2.0 ~arrival_rate:l1 ~capacity:c1
        ~service:(Phase_type.exp_ m1) ~switch_over:(Phase_type.exp_ x1) ();
    ]

(* The closed-loop chain of an all-exponential polling system, rebuilt
   from its physics (arrivals fill queues, a serving server completes
   at mu, a switching server lands at chi, decisions resolve at the
   big-M rate).  Shares only the state <-> index bijection with the
   library — rates and costs are re-derived here. *)
let oracle_gain p (actions : int array) =
  let qs = Polling.queues p in
  let lam j = qs.(j).Polling.arrival_rate in
  let cap j = qs.(j).Polling.capacity in
  let rate_of label = function
    | Phase_type.Exp r -> r
    | d -> Alcotest.failf "oracle wants exp %s, got %s" label (Phase_type.to_spec d)
  in
  let mu j = rate_of "service" qs.(j).Polling.service in
  let chi j = rate_of "switch-over" qs.(j).Polling.switch_over in
  let big = 1e6 in
  let serve_power, idle_power, switch_power, sleep_power = polling_powers in
  let n_states = Polling.num_states p in
  let rates = ref [] in
  let cost = Array.make n_states 0.0 in
  for s = 0 to n_states - 1 do
    let st = Polling.state_of_index p s in
    let n = st.Polling.queues in
    let add to_state r =
      let s' = Polling.index p to_state in
      if r > 0.0 && s' <> s then rates := (s, s', r) :: !rates
    in
    Array.iteri
      (fun j nj ->
        if nj < cap j then begin
          let n' = Array.copy n in
          n'.(j) <- nj + 1;
          add { st with Polling.queues = n' } (lam j)
        end)
      n;
    let a = actions.(s) in
    let goto () =
      add { st with Polling.server = Polling.Switch (a - 1, 0) } big
    in
    (match st.Polling.server with
    | Polling.Idle j ->
        if a = Polling.action_serve p then
          add { st with Polling.server = Polling.Serve (j, 0) } big
        else if a = Polling.action_sleep p then
          add { st with Polling.server = Polling.Asleep } big
        else if a <> Polling.action_stay then goto ()
    | Polling.Asleep -> if a <> Polling.action_stay then goto ()
    | Polling.Serve (j, _) ->
        if n.(j) >= 1 then begin
          let n' = Array.copy n in
          n'.(j) <- n.(j) - 1;
          add { Polling.server = Polling.Idle j; queues = n' } (mu j)
        end
    | Polling.Switch (j, _) -> add { st with Polling.server = Polling.Idle j } (chi j));
    let power =
      match st.Polling.server with
      | Polling.Idle _ -> idle_power
      | Polling.Serve _ -> serve_power
      | Polling.Switch _ -> switch_power
      | Polling.Asleep -> sleep_power
    in
    let holding = ref 0.0 and loss = ref 0.0 in
    Array.iteri
      (fun j nj ->
        holding := !holding +. (qs.(j).Polling.weight *. float_of_int nj);
        if nj = cap j then loss := !loss +. lam j)
      n;
    cost.(s) <- power +. !holding +. (0.5 (* loss_penalty *) *. !loss)
  done;
  let gen = Dpm_ctmc.Generator.of_rates ~dim:n_states !rates in
  let pi = Dpm_ctmc.Steady_state.solve gen in
  Dpm_ctmc.Steady_state.expected_value pi (fun i -> cost.(i))

let polling_matches_oracle () =
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  let p = two_queue () in
  let m = Polling.to_ctmdp p in
  (match Dpm_robust.Policy_iteration.validate_model m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "polling rejected: %s" (Dpm_robust.Error.to_string e));
  let s = ok_exn "polling solve" (Solve.solve m) in
  (* The optimum must actually serve somewhere. *)
  if not (Array.exists (fun a -> a = Polling.action_serve p) s.Solve.actions)
  then Alcotest.fail "optimal polling policy never serves";
  let oracle = oracle_gain p s.Solve.actions in
  Test_util.check_relative ~rel:1e-6 "polling gain vs independent oracle"
    oracle s.Solve.gain;
  (* The library's own closed-loop path must agree with the oracle
     even tighter (same chain, different row construction). *)
  Test_util.check_relative ~rel:1e-9 "stationary_gain vs oracle" oracle
    (Solve.stationary_gain m ~actions:s.Solve.actions)

let polling_index_roundtrip () =
  let p =
    Polling.create
      [
        Polling.queue ~arrival_rate:0.3 ~capacity:2
          ~service:(Phase_type.erlang 3 2.0)
          ~switch_over:(Phase_type.fit ~mean:0.2 ~scv:2.5) ();
        Polling.queue ~arrival_rate:0.2 ~capacity:1 ();
      ]
  in
  for k = 0 to Polling.num_states p - 1 do
    let k' = Polling.index p (Polling.state_of_index p k) in
    if k' <> k then Alcotest.failf "index roundtrip: %d -> %d" k k'
  done;
  Test_util.check_raises_invalid "occupancy out of range" (fun () ->
      Polling.index p { Polling.server = Polling.Asleep; queues = [| 3; 0 |] })

let polling_progress_constraints () =
  let p = two_queue ~caps:(1, 1) () in
  let m = Polling.to_ctmdp p in
  let stay_at st =
    Dpm_ctmdp.Model.find_choice m (Polling.index p st) ~action:Polling.action_stay
  in
  (* Idling on a full local queue and sleeping through all-full are
     withheld; the same server states with slack keep [stay]. *)
  let idle0 n = { Polling.server = Polling.Idle 0; queues = n } in
  let asleep n = { Polling.server = Polling.Asleep; queues = n } in
  if stay_at (idle0 [| 1; 0 |]) <> None then
    Alcotest.fail "idle server may stay on a full local queue";
  if stay_at (idle0 [| 0; 1 |]) = None then
    Alcotest.fail "idle stay wrongly withheld with local slack";
  if stay_at (asleep [| 1; 1 |]) <> None then
    Alcotest.fail "sleeping server may stay with every queue full";
  if stay_at (asleep [| 1; 0 |]) = None then
    Alcotest.fail "asleep stay wrongly withheld with slack"

let prop_polling_throughput_conservation =
  Test_util.qtest ~count:10
    "polling steady state conserves throughput (served = accepted)"
    QCheck2.Gen.(
      float_range 0.05 0.6 >>= fun l0 ->
      float_range 0.05 0.6 >>= fun l1 ->
      int_range 1 2 >>= fun c0 ->
      int_range 1 2 >>= fun c1 ->
      float_range 0.5 2.0 >>= fun m0 ->
      float_range 0.5 2.0 >>= fun m1 ->
      return (l0, l1, c0, c1, m0, m1))
    (fun (l0, l1, c0, c1, m0, m1) ->
      Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
      let p =
        two_queue ~lam:(l0, l1) ~caps:(c0, c1) ~mus:(m0, m1) ()
      in
      let m = Polling.to_ctmdp p in
      let s = ok_exn "conservation solve" (Solve.solve m) in
      let gen, _ = Solve.closed_loop m ~actions:s.Solve.actions in
      let pi = Dpm_ctmc.Steady_state.solve gen in
      let qs = Polling.queues p in
      let served = ref 0.0 and accepted = ref 0.0 in
      Array.iteri
        (fun k pk ->
          let st = Polling.state_of_index p k in
          (match st.Polling.server with
          | Polling.Serve (j, phase) when st.Polling.queues.(j) >= 1 ->
              served :=
                !served
                +. pk
                   *. Phase_type.completion_rate qs.(j).Polling.service phase
          | _ -> ());
          Array.iteri
            (fun j nj ->
              if nj < qs.(j).Polling.capacity then
                accepted := !accepted +. (pk *. qs.(j).Polling.arrival_rate))
            st.Polling.queues)
        pi;
      Float.abs (!served -. !accepted) <= 1e-6 *. (1.0 +. !accepted))

let polling_deadline_guard () =
  let m = Polling.to_ctmdp (two_queue ()) in
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  match Solve.solve ~deadline_s:0.0 m with
  | Error (Dpm_robust.Error.Deadline_exceeded _) -> ()
  | Error e ->
      Alcotest.failf "expected deadline error, got %s"
        (Dpm_robust.Error.to_string e)
  | Ok _ -> Alcotest.fail "a zero deadline should fire on the first tick"

(* --- Batching -------------------------------------------------------- *)

let batch1_reproduces_golden_pins () =
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  let sys = Paper_instance.system () in
  let b =
    Batching.create ~sys ~max_batch:1
      ~service_rate:(fun _ -> Paper_instance.service_rate)
      ()
  in
  List.iter
    (fun (weight, gain, _, _, actions) ->
      let m = Batching.to_ctmdp b ~weight in
      if fingerprint m <> fingerprint (Sys_model.to_ctmdp sys ~weight) then
        Alcotest.failf "batch-1 fingerprint drifted at w=%g" weight;
      let s = ok_exn "batch-1 solve" (Solve.solve m) in
      Test_util.check_close ~tol:1e-9
        (Printf.sprintf "batch-1 gain at w=%g" weight)
        gain s.Solve.gain;
      if s.Solve.actions <> actions then
        Alcotest.failf "batch-1 policy drifted at w=%g" weight)
    Test_golden.pins

let batching_monotone_in_cap () =
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  let sys = Paper_instance.system () in
  (* A constant per-batch completion rate: a bigger batch serves more
     per completion, so widening the cap can only help. *)
  let gain_at max_batch =
    let b =
      Batching.create ~sys ~max_batch
        ~service_rate:(fun _ -> Paper_instance.service_rate)
        ()
    in
    (ok_exn "monotone solve" (Solve.solve (Batching.to_ctmdp b ~weight:1.0)))
      .Solve.gain
  in
  let g1 = gain_at 1 and g2 = gain_at 2 and g3 = gain_at 3 in
  if not (g2 <= g1 +. 1e-9 && g3 <= g2 +. 1e-9) then
    Alcotest.failf "gain not monotone in batch cap: %.12g %.12g %.12g" g1 g2 g3;
  if not (g3 < g1 -. 1e-6) then
    Alcotest.failf "batching never helped: %.12g vs %.12g" g1 g3

let batching_energy_disables_batches () =
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  let sys = Paper_instance.system () in
  let base = Optimize.solve ~weight:1.0 sys in
  let b =
    Batching.create ~sys ~max_batch:4
      ~service_rate:(fun _ -> Paper_instance.service_rate)
      ~batch_energy:(fun bsz -> if bsz > 1 then 1e6 else 0.0)
      ()
  in
  let s = ok_exn "energy solve" (Solve.solve (Batching.to_ctmdp b ~weight:1.0)) in
  (* Prohibitive per-batch energy prices multi-request batches out;
     the optimum collapses to the paper policy. *)
  if s.Solve.actions <> base.Optimize.actions then
    Alcotest.fail "huge batch energy should reproduce the base policy";
  Test_util.check_close ~tol:1e-9 "energy-priced gain" base.Optimize.gain
    s.Solve.gain;
  if Array.exists (fun a -> Batching.batch_of_action b a > 1) s.Solve.actions
  then Alcotest.fail "policy kept an uneconomical batch"

(* --- Sweeps: domain-count bit-identity ------------------------------- *)

let sweep_bit_identity () =
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  let service = Phase_type.fit ~mean:1.5 ~scv:0.5 in
  let ph = paper_phased ~service () in
  let build w = Phased.to_ctmdp ph ~weight:w in
  let weights = [ 0.1; 1.0; 5.0; 20.0 ] in
  let run domains =
    List.map
      (fun (w, r) ->
        let s = ok_exn (Printf.sprintf "sweep w=%g" w) r in
        (w, bits s.Solve.gain, s.Solve.actions))
      (Solve.sweep ~domains ~weights build)
  in
  let r1 = run 1 in
  List.iter
    (fun domains ->
      if run domains <> r1 then
        Alcotest.failf "sweep at %d domains is not bit-identical" domains)
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "phase-type moment fits" `Quick phase_type_fit;
    Alcotest.test_case "phase-type views and spec grammar" `Quick
      phase_type_views;
    Alcotest.test_case "phase-type invalid arguments" `Quick phase_type_invalid;
    prop_erlang1_bit_identity;
    Alcotest.test_case "degenerate scenario models share the cache" `Quick
      degenerate_models_share_cache;
    Alcotest.test_case "erlang-k and hyper2 services solve and cross-check"
      `Quick erlang_k_and_hyper2_solve;
    Alcotest.test_case "K=2 polling matches the independent GTH oracle" `Quick
      polling_matches_oracle;
    Alcotest.test_case "polling index roundtrip" `Quick polling_index_roundtrip;
    Alcotest.test_case "polling progress constraints" `Quick
      polling_progress_constraints;
    prop_polling_throughput_conservation;
    Alcotest.test_case "polling deadline guard" `Quick polling_deadline_guard;
    Alcotest.test_case "batch-1 reproduces the golden pins" `Quick
      batch1_reproduces_golden_pins;
    Alcotest.test_case "gain is monotone in the batch cap" `Quick
      batching_monotone_in_cap;
    Alcotest.test_case "prohibitive batch energy reproduces the base policy"
      `Quick batching_energy_disables_batches;
    Alcotest.test_case "scenario sweeps are bit-identical across domains"
      `Quick sweep_bit_identity;
  ]
