(* Whole-pipeline property tests over random devices: random service
   providers composed with random arrival rates and capacities must
   flow through model construction, optimization, analytics and
   simulation while preserving every structural invariant. *)

open Dpm_core
open Dpm_linalg

let sp_gen =
  QCheck2.Gen.(
    (* 2..4 modes, exactly one active for tensor-builder coverage plus
       occasionally a second active mode. *)
    int_range 2 4 >>= fun n_modes ->
    int_range 0 1 >>= fun extra_active ->
    (* Keep at least one inactive mode: a server that can never power
       down has no deepest_sleep and is outside the DPM problem. *)
    let active_count = min (n_modes - 1) (1 + extra_active) in
    let cell = float_range 0.05 3.0 in
    list_repeat (n_modes * n_modes) cell >>= fun times ->
    list_repeat (n_modes * n_modes) (float_range 0.0 10.0) >>= fun energies ->
    list_repeat n_modes (float_range 0.5 5.0) >>= fun rates ->
    list_repeat n_modes (float_range 0.0 50.0) >>= fun powers ->
    let times = Array.of_list times and energies = Array.of_list energies in
    let rates = Array.of_list rates and powers = Array.of_list powers in
    return
      (Service_provider.create
         ~names:(Array.init n_modes (Printf.sprintf "m%d"))
         ~switch_time:
           (Array.init n_modes (fun i ->
                Array.init n_modes (fun j -> if i = j then 0.0 else times.((i * n_modes) + j))))
         ~service_rate:
           (Array.init n_modes (fun s -> if s < active_count then rates.(s) else 0.0))
         ~power:powers
         ~switch_energy:
           (Array.init n_modes (fun i ->
                Array.init n_modes (fun j ->
                    if i = j then 0.0 else energies.((i * n_modes) + j))))))

let sys_gen =
  QCheck2.Gen.(
    sp_gen >>= fun sp ->
    int_range 1 5 >>= fun queue_capacity ->
    float_range 0.05 1.5 >>= fun arrival_rate ->
    return (Sys_model.create ~sp ~queue_capacity ~arrival_rate ()))

let prop_generator_invariants =
  Test_util.qtest ~count:80 "every valid policy's chain is a generator, unichain"
    sys_gen
    (fun sys ->
      (* Check the greedy policy (always expressible) and the optimal
         one. *)
      let policies =
        [
          Policies.actions_array sys (Policies.greedy sys);
          (Optimize.solve ~weight:1.0 sys).Optimize.actions;
        ]
      in
      List.for_all
        (fun actions ->
          let g =
            Sys_model.generator_of_actions sys ~actions:(fun x ->
                actions.(Sys_model.index sys x))
          in
          let rows_ok =
            Vec.norm_inf (Matrix.row_sums (Dpm_ctmc.Generator.to_matrix g)) < 1e-6
          in
          let unichain =
            match Dpm_ctmc.Structure.recurrent_classes g with
            | [ _ ] -> true
            | _ -> false
          in
          rows_ok && unichain)
        policies)

let prop_optimal_beats_greedy =
  Test_util.qtest ~count:60 "optimum never loses to greedy on its own objective"
    sys_gen
    (fun sys ->
      let w = 1.0 in
      let sol = Optimize.solve ~weight:w sys in
      let greedy = Analytic.of_actions sys ~actions:(Policies.greedy sys) in
      sol.Optimize.gain
      <= greedy.Analytic.power +. (w *. greedy.Analytic.avg_waiting_requests) +. 1e-6)

let prop_flow_conservation =
  Test_util.qtest ~count:60 "throughput equals accepted arrivals" sys_gen
    (fun sys ->
      let m = Analytic.of_actions sys ~actions:(Policies.greedy sys) in
      let accepted =
        Sys_model.arrival_rate sys *. (1.0 -. m.Analytic.loss_probability)
      in
      Float.abs (m.Analytic.throughput -. accepted)
      <= 1e-6 *. (1.0 +. accepted))

let prop_optimal_policy_valid =
  Test_util.qtest ~count:60 "optimal actions respect the constraints" sys_gen
    (fun sys ->
      let sol = Optimize.solve ~weight:0.3 sys in
      match
        Policies.check_valid sys (fun x -> sol.Optimize.actions.(Sys_model.index sys x))
      with
      | Ok () -> true
      | Error _ -> false)

let describe_sys sys =
  let sp = Sys_model.sp sys in
  let n = Service_provider.num_modes sp in
  Format.asprintf "lambda=%g Q=%d modes=[%s] chi=[%s]"
    (Sys_model.arrival_rate sys) (Sys_model.queue_capacity sys)
    (String.concat "; "
       (List.init n (fun s ->
            Printf.sprintf "%s mu=%g pow=%g" (Service_provider.name sp s)
              (Service_provider.service_rate sp s) (Service_provider.power sp s))))
    (String.concat "; "
       (List.concat
          (List.init n (fun i ->
               List.filter_map
                 (fun j ->
                   if i = j then None
                   else
                     Some
                       (Printf.sprintf "%d->%d t=%g e=%g" i j
                          (Service_provider.switch_time sp i j)
                          (Service_provider.switch_energy sp i j)))
                 (List.init n (fun j -> j))))))

let prop_sim_tracks_model =
  Test_util.qtest ~count:12 ~print:describe_sys
    "simulation tracks the analytic model" sys_gen
    (fun sys ->
      if Sys_model.queue_capacity sys < 2 then true
        (* At Q = 1 the transfer-boundary artifact (the model drops
           arrivals during a full transfer, the physical simulator
           accepts them — the case the paper skips "for brevity")
           dominates the metrics; it gets its own directional test in
           test_integration.ml. *)
      else begin
      let sol = Optimize.solve ~weight:1.0 sys in
      (* Average three replications: single runs on high-variance
         random systems (huge wake-up energies, near-saturation
         loads) are too noisy for a sharp bound. *)
      let runs =
        List.map
          (fun seed ->
            Dpm_sim.Power_sim.run ~seed ~sys
              ~workload:
                (Dpm_sim.Workload.poisson ~rate:(Sys_model.arrival_rate sys))
              ~controller:(Dpm_sim.Controller.of_solution sys sol)
              ~stop:(Dpm_sim.Power_sim.Requests 30_000)
              ())
          [ 17L; 18L; 19L ]
      in
      let avg f = Dpm_prob.Stat.mean (List.map f runs) in
      let m = sol.Optimize.metrics in
      (* Hybrid tolerance: 20% relative or a small absolute slack —
         overloaded systems expose the documented transfer-boundary
         acceptance difference between model and simulator. *)
      let close a b abs_slack =
        Float.abs (b -. a) <= Float.max (0.2 *. Float.abs a) abs_slack
      in
      close m.Analytic.power (avg (fun r -> r.Dpm_sim.Power_sim.avg_power)) 0.2
      && close m.Analytic.avg_waiting_requests
           (avg (fun r -> r.Dpm_sim.Power_sim.avg_waiting_requests))
           0.1
      end)

let prop_tensor_builder_on_random_single_active =
  Test_util.qtest ~count:40 "tensor formula agrees on random single-active SPs"
    sys_gen
    (fun sys ->
      if List.length (Service_provider.active_modes (Sys_model.sp sys)) <> 1 then
        true
      else begin
        let ok = ref true in
        for a = 0 to Service_provider.num_modes (Sys_model.sp sys) - 1 do
          let direct = Sys_model.uniform_generator sys ~action:a in
          let tensor = Sys_model.tensor_generator sys ~action:a in
          if not (Matrix.approx_equal ~tol:1e-8 direct tensor) then ok := false
        done;
        !ok
      end)

let prop_operator_matvec =
  Test_util.qtest ~count:60 "lazy Kron operator matvec matches the dense build"
    sys_gen
    (fun sys ->
      let n = Sys_model.num_states sys in
      let ok = ref true in
      for a = 0 to Service_provider.num_modes (Sys_model.sp sys) - 1 do
        let op = Sys_model.operator sys ~action:a in
        let dense = Sys_model.uniform_generator sys ~action:a in
        (* A deterministic non-trivial probe vector: every entry
           distinct and sign-mixed, so block/offset mistakes in the
           Kron walk cannot cancel. *)
        let x = Vec.init n (fun i -> sin (float_of_int (((a + 1) * n) + i))) in
        let y = Bvec.create n in
        Operator.matvec op (Bvec.of_vec x) ~dst:y;
        if not (Bvec.approx_equal ~tol:1e-8 y (Bvec.of_vec (Matrix.mul_vec dense x)))
        then ok := false
      done;
      !ok)

let prop_implicit_evaluation_agrees =
  Test_util.qtest ~count:40
    "implicit policy evaluation matches the sparse reference" sys_gen
    (fun sys ->
      let m = Sys_model.to_ctmdp sys ~weight:1.0 in
      let p =
        Dpm_ctmdp.Policy.of_actions m
          (Policies.actions_array sys (Policies.greedy sys))
      in
      let s = Dpm_ctmdp.Policy_iteration.evaluate_sparse m p in
      let i = Dpm_ctmdp.Policy_iteration.evaluate_implicit m p in
      let gain_ok =
        Float.abs (s.Dpm_ctmdp.Policy_iteration.gain -. i.Dpm_ctmdp.Policy_iteration.gain)
        <= 1e-6 *. (1.0 +. Float.abs s.Dpm_ctmdp.Policy_iteration.gain)
      in
      let bias_ok =
        Vec.norm_inf
          (Vec.sub s.Dpm_ctmdp.Policy_iteration.bias
             i.Dpm_ctmdp.Policy_iteration.bias)
        <= 1e-6
           *. (1.0 +. Vec.norm_inf s.Dpm_ctmdp.Policy_iteration.bias)
      in
      let full_ref = Optimize.solve ~weight:1.0 sys in
      let full_imp =
        Optimize.solve ~weight:1.0 ~eval:Dpm_ctmdp.Policy_iteration.Implicit sys
      in
      let solve_ok =
        Float.abs (full_ref.Optimize.gain -. full_imp.Optimize.gain)
        <= 1e-6 *. (1.0 +. Float.abs full_ref.Optimize.gain)
      in
      gain_ok && bias_ok && solve_ok)

let suite =
  [
    prop_generator_invariants;
    prop_optimal_beats_greedy;
    prop_flow_conservation;
    prop_optimal_policy_valid;
    prop_sim_tracks_model;
    prop_tensor_builder_on_random_single_active;
    prop_operator_matvec;
    prop_implicit_evaluation_agrees;
  ]
