open Dpm_core
open Dpm_sim

let t = Alcotest.test_case

let replications ?(n = 5) () =
  let sys = Paper_instance.system () in
  Power_sim.replicate
    ~seeds:(List.init n (fun i -> Int64.of_int (100 + i)))
    ~sys
    ~workload:(fun () -> Workload.poisson ~rate:(Sys_model.arrival_rate sys))
    ~controller:(fun () -> Controller.greedy sys)
    ~stop:(Power_sim.Requests 10_000) ()

let summary_statistics () =
  let rs = replications () in
  let s = Summary.of_results rs in
  Alcotest.(check int) "n" 5 s.Summary.power.Summary.n;
  (* The mean of the summary equals the plain mean. *)
  let manual =
    List.fold_left (fun acc r -> acc +. r.Power_sim.avg_power) 0.0 rs /. 5.0
  in
  Test_util.check_close ~tol:1e-12 "mean" manual s.Summary.power.Summary.mean;
  Alcotest.(check bool) "positive dispersion" true
    (s.Summary.power.Summary.ci95_half_width > 0.0);
  Test_util.check_relative ~rel:1e-9 "ci = 1.96 se"
    (1.959964 *. s.Summary.power.Summary.std_error)
    s.Summary.power.Summary.ci95_half_width

let interval_contains_analytic_truth () =
  (* The analytic power should fall inside (or very near) the CI of a
     few replications — the statistically honest version of the
     MODELCHECK experiment. *)
  let sys = Paper_instance.system () in
  let analytic = Analytic.of_actions sys ~actions:(Policies.greedy sys) in
  let s = Summary.of_results (replications ~n:8 ()) in
  let e = s.Summary.power in
  (* Allow 2 half-widths: 8 replications of 10k requests leave some
     bias from the boundary artifact. *)
  Alcotest.(check bool)
    (Format.asprintf "analytic %.3f within %a (x2)" analytic.Analytic.power
       Summary.pp_estimate e)
    true
    (Float.abs (analytic.Analytic.power -. e.Summary.mean)
    <= 2.0 *. e.Summary.ci95_half_width +. 0.2)

let contains_predicate () =
  let s = Summary.of_results (replications ()) in
  Alcotest.(check bool) "mean is inside" true
    (Summary.contains s.Summary.power s.Summary.power.Summary.mean);
  Alcotest.(check bool) "far point is outside" false
    (Summary.contains s.Summary.power (s.Summary.power.Summary.mean +. 100.0))

let single_replication_degrades_gracefully () =
  let s = Summary.of_results (replications ~n:1 ()) in
  Alcotest.(check int) "n = 1" 1 s.Summary.power.Summary.n;
  (* Zero-width interval, never NaN: metric exports must stay valid
     JSON even for one replication. *)
  Alcotest.(check (float 0.0)) "zero std error" 0.0 s.Summary.power.Summary.std_error;
  Alcotest.(check (float 0.0))
    "zero half width" 0.0 s.Summary.power.Summary.ci95_half_width;
  Alcotest.(check bool) "zero-width interval contains its mean" true
    (Summary.contains s.Summary.power s.Summary.power.Summary.mean);
  Alcotest.(check bool) "and nothing else" false
    (Summary.contains s.Summary.power (s.Summary.power.Summary.mean +. 1e-6))

let empty_rejected () =
  Test_util.check_raises_invalid "no replications" (fun () ->
      ignore (Summary.of_results []))

let suite =
  [
    t "statistics" `Quick summary_statistics;
    t "CI covers analytic truth" `Slow interval_contains_analytic_truth;
    t "contains" `Quick contains_predicate;
    t "single replication" `Quick single_replication_degrades_gracefully;
    t "empty rejected" `Quick empty_rejected;
  ]
