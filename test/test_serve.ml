(* Dpm_serve: bounded ingestion, the health state machine, retry
   backoff, checkpoint round-trips, and the engine's supervise-and-
   degrade contract.

   The central claims pinned here:
   - a checkpoint save -> crash -> restore is bit-identical: the
     restored engine answers the same decisions and evolves its
     estimator exactly like the original;
   - the engine answers every query in every health state (failures
     hold the incumbent; untrusted checkpoints pin the safe policy);
   - the bounded queue sheds excess load with exact drop accounting. *)

open Dpm_core
module Bqueue = Dpm_serve.Bqueue
module Health = Dpm_serve.Health
module Backoff = Dpm_serve.Backoff
module Checkpoint = Dpm_serve.Checkpoint
module Engine = Dpm_serve.Engine
module Estimator = Dpm_adapt.Estimator

let t = Alcotest.test_case

(* --- bounded queue -------------------------------------------------- *)

let bqueue_overflow_drops_and_accounts () =
  let q = Bqueue.create ~capacity:3 in
  Alcotest.(check bool) "accepts below capacity" true
    (Bqueue.push q 1 && Bqueue.push q 2 && Bqueue.push q 3);
  Alcotest.(check bool) "rejects at capacity" false (Bqueue.push q 4);
  Alcotest.(check bool) "rejects again" false (Bqueue.push q 5);
  Alcotest.(check int) "drop count" 2 (Bqueue.dropped q);
  Alcotest.(check int) "accepted count" 3 (Bqueue.accepted q);
  (* Drop-newest: the accepted elements survive in FIFO order. *)
  Alcotest.(check (list int)) "FIFO, oldest kept" [ 1; 2; 3 ]
    (List.filter_map (fun () -> Bqueue.pop q) [ (); (); () ]);
  Alcotest.(check (option int)) "drained" None (Bqueue.pop q);
  (* Draining frees capacity; accounting keeps the history. *)
  Alcotest.(check bool) "accepts after drain" true (Bqueue.push q 6);
  Alcotest.(check int) "drops persist" 2 (Bqueue.dropped q)

let bqueue_rejects_degenerate_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Bqueue.create: capacity must be >= 1")
    (fun () -> ignore (Bqueue.create ~capacity:0 : int Bqueue.t))

(* --- health state machine ------------------------------------------- *)

let health_transition_matrix () =
  let open Health in
  List.iter
    (fun (from, outcome, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "%s + %s" (state_to_string from)
           (match outcome with
           | Resolve_ok -> "ok"
           | Resolve_failed -> "failed"
           | Checkpoint_invalid -> "invalid"))
        (state_to_string expected)
        (state_to_string (transition from outcome)))
    [
      (Healthy, Resolve_ok, Healthy);
      (Healthy, Resolve_failed, Degraded);
      (Healthy, Checkpoint_invalid, Safe_mode);
      (Degraded, Resolve_ok, Healthy);
      (Degraded, Resolve_failed, Degraded);
      (Degraded, Checkpoint_invalid, Safe_mode);
      (Safe_mode, Resolve_ok, Healthy);
      (* a failure must not promote Safe_mode to the milder Degraded *)
      (Safe_mode, Resolve_failed, Safe_mode);
      (Safe_mode, Checkpoint_invalid, Safe_mode);
    ]

let health_time_accounting () =
  let h = Health.create Health.Healthy in
  Health.apply h Health.Resolve_failed ~now:10.0;
  (* healthy 0..10 *)
  Health.apply h Health.Resolve_ok ~now:15.0;
  (* degraded 10..15 *)
  Health.observe h ~now:25.0;
  (* healthy 15..25 *)
  Alcotest.(check (float 1e-9)) "healthy time" 20.0 (Health.time_in h Health.Healthy);
  Alcotest.(check (float 1e-9)) "degraded time" 5.0 (Health.time_in h Health.Degraded);
  Alcotest.(check (float 1e-9)) "degraded fraction" 0.2 (Health.degraded_fraction h);
  Alcotest.(check int) "transitions" 2 (Health.transitions h);
  (* The clock never runs backwards. *)
  Health.observe h ~now:1.0;
  Alcotest.(check (float 1e-9)) "stale stamp ignored" 20.0
    (Health.time_in h Health.Healthy)

let health_slugs_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Health.state_to_string s) true
        (Health.state_of_string (Health.state_to_string s) = Some s))
    [ Health.Healthy; Health.Degraded; Health.Safe_mode ];
  Alcotest.(check bool) "unknown slug" true (Health.state_of_string "bad" = None)

(* --- backoff -------------------------------------------------------- *)

let backoff_grows_caps_and_resets () =
  let b = Backoff.create ~base:1.0 ~factor:2.0 ~max_delay:8.0 ~jitter:0.25 () in
  Alcotest.(check (float 0.0)) "no delay before failures" 0.0 (Backoff.delay b);
  let expect_near nominal =
    let d = Backoff.delay b in
    Alcotest.(check bool)
      (Printf.sprintf "delay %.3f within 25%% of %g" d nominal)
      true
      (d >= 0.75 *. nominal && d <= 1.25 *. nominal)
  in
  Backoff.note_failure b;
  expect_near 1.0;
  Backoff.note_failure b;
  expect_near 2.0;
  Backoff.note_failure b;
  expect_near 4.0;
  Backoff.note_failure b;
  expect_near 8.0;
  Backoff.note_failure b;
  (* capped *)
  expect_near 8.0;
  Alcotest.(check int) "failure streak" 5 (Backoff.failures b);
  Backoff.note_success b;
  Alcotest.(check int) "streak reset" 0 (Backoff.failures b);
  Alcotest.(check (float 0.0)) "delay reset" 0.0 (Backoff.delay b)

let backoff_deterministic_for_seed () =
  let run () =
    let b = Backoff.create ~seed:99L () in
    List.init 5 (fun _ ->
        Backoff.note_failure b;
        Backoff.delay b)
  in
  Alcotest.(check (list (float 0.0))) "same seed, same jitter" (run ()) (run ())

(* --- estimator checkpoint round-trip -------------------------------- *)

(* Bit-identical restore: same rate and band now, and the same future
   evolution after further shared observations. *)
let estimator_roundtrip_exact est feed_more =
  let restored =
    match Estimator.of_json (Estimator.to_json est) with
    | Ok e -> e
    | Error m -> Alcotest.failf "of_json rejected to_json output: %s" m
  in
  let check_equal stage =
    Alcotest.(check bool)
      (stage ^ ": rate identical") true
      (Estimator.rate est = Estimator.rate restored);
    Alcotest.(check bool)
      (stage ^ ": band identical") true
      (Estimator.band est = Estimator.band restored);
    Alcotest.(check int)
      (stage ^ ": observations")
      (Estimator.observations est)
      (Estimator.observations restored)
  in
  check_equal "restored";
  feed_more est;
  feed_more restored;
  check_equal "after shared evolution"

let estimator_checkpoint_roundtrip () =
  let rng = Dpm_prob.Rng.create 11L in
  List.iter
    (fun (name, est) ->
      let now = ref 0.0 in
      for _ = 1 to 37 do
        now := !now +. (0.5 +. Dpm_prob.Rng.float rng);
        Estimator.observe_arrival est ~now:!now
      done;
      let gaps = List.init 20 (fun i -> 0.25 +. (0.1 *. float_of_int i)) in
      estimator_roundtrip_exact est (fun e ->
          List.iter (Estimator.observe_gap e) gaps);
      Alcotest.(check pass) name () ())
    [
      ("window", Estimator.sliding_window ~window:16 ());
      ("ewma", Estimator.ewma ~alpha:0.2 ());
    ]

let prop_estimator_roundtrip =
  (* Arbitrary positive gap streams through an arbitrary window size:
     to_json/of_json must reproduce rate, band and count exactly. *)
  let gen =
    QCheck2.Gen.(
      pair (int_range 2 12)
        (list_size (int_range 0 40) (float_range 0.001 100.0)))
  in
  let print (w, gaps) =
    Printf.sprintf "window=%d gaps=[%s]" w
      (String.concat ";" (List.map string_of_float gaps))
  in
  Test_util.qtest ~count:100 ~print "estimator checkpoint round-trips exactly"
    gen (fun (window, gaps) ->
      let est = Estimator.sliding_window ~window () in
      List.iter (Estimator.observe_gap est) gaps;
      match Estimator.of_json (Estimator.to_json est) with
      | Error _ -> false
      | Ok restored ->
          Estimator.rate est = Estimator.rate restored
          && Estimator.band est = Estimator.band restored
          && Estimator.observations est = Estimator.observations restored)

let estimator_of_json_validates () =
  let open Dpm_trace.Json in
  let reject name j =
    match Estimator.of_json j with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ()
  in
  reject "not an object" (Num 3.0);
  reject "unknown kind"
    (Obj [ ("kind", Str "nonsense"); ("z", Num 1.0); ("total", Num 0.0) ]);
  reject "alpha out of range"
    (Obj
       [
         ("kind", Str "ewma");
         ("alpha", Num 1.5);
         ("mean", Num 1.0);
         ("sq_mean", Num 1.0);
         ("z", Num 1.96);
         ("last_arrival", Null);
         ("total", Num 2.0);
       ])

(* --- checkpoint codec and atomicity --------------------------------- *)

let sample_checkpoint () =
  {
    Checkpoint.saved_at = 123.5;
    fingerprint = 0xDEADBEEF01234567L;
    deployed_rate = 0.25;
    weight = 1.0;
    actions = [| 0; 1; 2; 1; 0 |];
    health = Health.Degraded;
    estimator = Estimator.to_json (Estimator.sliding_window ~window:4 ());
    events_ingested = 42;
    drops = 3;
  }

let checkpoint_json_roundtrip () =
  let cp = sample_checkpoint () in
  match Checkpoint.of_json (Checkpoint.to_json cp) with
  | Error m -> Alcotest.failf "round-trip rejected: %s" m
  | Ok cp' ->
      Alcotest.(check bool) "fingerprint" true
        (cp'.Checkpoint.fingerprint = cp.Checkpoint.fingerprint);
      Alcotest.(check (float 0.0)) "saved_at" cp.Checkpoint.saved_at
        cp'.Checkpoint.saved_at;
      Alcotest.(check (array int)) "actions" cp.Checkpoint.actions
        cp'.Checkpoint.actions;
      Alcotest.(check bool) "health" true
        (cp'.Checkpoint.health = Health.Degraded);
      Alcotest.(check int) "events" 42 cp'.Checkpoint.events_ingested;
      Alcotest.(check int) "drops" 3 cp'.Checkpoint.drops

let checkpoint_version_gate () =
  let open Dpm_trace.Json in
  match
    Checkpoint.of_json
      (match Checkpoint.to_json (sample_checkpoint ()) with
      | Obj fields ->
          Obj
            (List.map
               (function
                 | "version", _ -> ("version", Num 999.0) | kv -> kv)
               fields)
      | j -> j)
  with
  | Ok _ -> Alcotest.fail "unknown version accepted"
  | Error _ -> ()

let checkpoint_file_roundtrip_atomic () =
  let path = Filename.temp_file "dpm_serve_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cp = sample_checkpoint () in
      (match Checkpoint.save ~path cp with
      | Ok () -> ()
      | Error m -> Alcotest.failf "save failed: %s" m);
      Alcotest.(check bool) "no temp file left" false
        (Sys.file_exists (path ^ ".tmp"));
      (* A second save overwrites via rename: the previous checkpoint
         is never visible half-written. *)
      (match Checkpoint.save ~path { cp with Checkpoint.saved_at = 200.0 } with
      | Ok () -> ()
      | Error m -> Alcotest.failf "re-save failed: %s" m);
      match Checkpoint.load ~path with
      | Error m -> Alcotest.failf "load failed: %s" m
      | Ok cp' ->
          Alcotest.(check (float 0.0)) "latest save wins" 200.0
            cp'.Checkpoint.saved_at)

(* --- engine --------------------------------------------------------- *)

let paper_sys () = Paper_instance.system ()

(* Feed evenly spaced arrivals (rate 1.0 — far above the nominal 1/6,
   so drift triggers) and pump. *)
let feed engine ~from ~n =
  for i = 1 to n do
    assert (Engine.offer_arrival engine ~at:(from +. float_of_int i))
  done;
  Engine.pump engine

let all_states_answered engine sys =
  Array.iter
    (fun st ->
      let a = Engine.decide engine st in
      Alcotest.(check bool) "action valid" true
        (List.mem a (Sys_model.valid_actions sys st)))
    (Sys_model.states sys)

let engine_cold_start_matches_static_optimum () =
  let sys = paper_sys () in
  let engine = Engine.create ~weight:1.0 sys in
  Alcotest.(check bool) "healthy" true (Engine.health engine = Health.Healthy);
  let solution = Optimize.solve ~weight:1.0 sys in
  Alcotest.(check (array int)) "cold incumbent = static optimum"
    solution.Optimize.actions
    (Engine.deployed_actions engine);
  all_states_answered engine sys

let engine_degrades_and_recovers () =
  let sys = paper_sys () in
  (* Stall every guard tick and give the watchdog no budget: every
     re-solve attempt dies by deadline, deterministically. *)
  let engine =
    Engine.create ~weight:1.0 ~min_observations:10 ~cooldown:5.0
      ~deadline_s:0.0
      ~faults:(Dpm_robust.Fault.plan [ Dpm_robust.Fault.Stall ])
      sys
  in
  let incumbent = Engine.deployed_actions engine in
  feed engine ~from:0.0 ~n:20;
  let s = Engine.stats engine in
  Alcotest.(check bool) "attempted" true (s.Engine.resolves >= 1);
  Alcotest.(check int) "all attempts failed" s.Engine.resolves
    s.Engine.resolve_failures;
  Alcotest.(check bool) "degraded" true (Engine.health engine = Health.Degraded);
  Alcotest.(check bool) "backoff armed" true
    (Engine.consecutive_failures engine >= 1);
  (match Engine.last_error engine with
  | Some (Dpm_robust.Error.Deadline_exceeded _) -> ()
  | Some e ->
      Alcotest.failf "wrong error class: %s" (Dpm_robust.Error.to_string e)
  | None -> Alcotest.fail "no error recorded");
  Alcotest.(check (array int)) "incumbent held on every failure" incumbent
    (Engine.deployed_actions engine);
  (* Degraded, not dead: every state still answers. *)
  all_states_answered engine sys

let engine_recovers_without_faults () =
  let sys = paper_sys () in
  let engine =
    Engine.create ~weight:1.0 ~min_observations:10 ~cooldown:5.0 sys
  in
  feed engine ~from:0.0 ~n:20;
  Alcotest.(check bool) "healthy after clean re-solve" true
    (Engine.health engine = Health.Healthy);
  let s = Engine.stats engine in
  Alcotest.(check bool) "switched to the drifted rate" true
    (s.Engine.policy_switches >= 1);
  Alcotest.(check (float 1e-9)) "deployed near rate 1"
    1.0 (Engine.deployed_rate engine);
  Alcotest.(check bool) "provenance present" true
    (Engine.last_provenance engine <> None)

let with_temp_checkpoint f =
  let path = Filename.temp_file "dpm_serve_engine" ".json" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let engine_checkpoint_crash_restore_bit_identical () =
  with_temp_checkpoint @@ fun path ->
  let sys = paper_sys () in
  let original =
    Engine.create ~weight:1.0 ~min_observations:10 ~cooldown:5.0
      ~checkpoint_path:path sys
  in
  feed original ~from:0.0 ~n:20;
  (match Engine.checkpoint original with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "checkpoint failed: %s" m);
  (* "Crash": build a fresh engine from the same path — nothing else
     is carried over. *)
  let restored =
    Engine.create ~weight:1.0 ~min_observations:10 ~cooldown:5.0
      ~checkpoint_path:path sys
  in
  Alcotest.(check bool) "restore taken" true (Engine.restored restored);
  Alcotest.(check bool) "health restored" true
    (Engine.health restored = Engine.health original);
  Alcotest.(check (array int)) "policy table restored"
    (Engine.deployed_actions original)
    (Engine.deployed_actions restored);
  Alcotest.(check (float 0.0)) "deployed rate restored"
    (Engine.deployed_rate original)
    (Engine.deployed_rate restored);
  (* Identical future evolution: same further arrivals, same
     decisions and the same estimator state on both sides. *)
  feed original ~from:30.0 ~n:15;
  feed restored ~from:30.0 ~n:15;
  Alcotest.(check (array int)) "same deployed table after evolution"
    (Engine.deployed_actions original)
    (Engine.deployed_actions restored);
  Alcotest.(check (float 0.0)) "same deployed rate after evolution"
    (Engine.deployed_rate original)
    (Engine.deployed_rate restored)

let engine_rejects_foreign_checkpoint () =
  with_temp_checkpoint @@ fun path ->
  (* Checkpoint a differently configured system (other queue
     capacity), then start an engine on the paper system against the
     same path: the fingerprint must not match, and the engine must
     pin the always-on safe policy in Safe_mode. *)
  let other =
    Sys_model.create
      ~sp:(Paper_instance.service_provider ())
      ~queue_capacity:2 ~arrival_rate:(1.0 /. 6.0) ()
  in
  let foreign = Engine.create ~weight:1.0 ~checkpoint_path:path other in
  (match Engine.checkpoint foreign with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "foreign checkpoint failed: %s" m);
  let sys = paper_sys () in
  let engine = Engine.create ~weight:1.0 ~checkpoint_path:path sys in
  Alcotest.(check bool) "safe mode" true
    (Engine.health engine = Health.Safe_mode);
  Alcotest.(check bool) "not restored" false (Engine.restored engine);
  Alcotest.(check (array int)) "always-on table pinned"
    (Policies.actions_array sys (Policies.always_on sys))
    (Engine.deployed_actions engine);
  all_states_answered engine sys

let engine_safe_mode_recovers_on_resolve () =
  with_temp_checkpoint @@ fun path ->
  let other =
    Sys_model.create
      ~sp:(Paper_instance.service_provider ())
      ~queue_capacity:2 ~arrival_rate:(1.0 /. 6.0) ()
  in
  let foreign = Engine.create ~weight:1.0 ~checkpoint_path:path other in
  ignore (Engine.checkpoint foreign : (string, string) result);
  let sys = paper_sys () in
  let engine =
    Engine.create ~weight:1.0 ~min_observations:10 ~cooldown:5.0
      ~checkpoint_path:path sys
  in
  Alcotest.(check bool) "starts in safe mode" true
    (Engine.health engine = Health.Safe_mode);
  (* Safe mode re-solves on cooldown without waiting for drift; a
     success promotes back to Healthy. *)
  feed engine ~from:0.0 ~n:20;
  Alcotest.(check bool) "recovered to healthy" true
    (Engine.health engine = Health.Healthy);
  Alcotest.(check bool) "health transitions recorded" true
    ((Engine.stats engine).Engine.health_transitions >= 2)

let engine_bounded_queue_backpressure () =
  let sys = paper_sys () in
  let engine = Engine.create ~weight:1.0 ~queue_capacity:4 sys in
  let accepted = ref 0 and rejected = ref 0 in
  for i = 1 to 10 do
    if Engine.offer_arrival engine ~at:(float_of_int i) then incr accepted
    else incr rejected
  done;
  Alcotest.(check int) "accepted up to capacity" 4 !accepted;
  Alcotest.(check int) "rejected the rest" 6 !rejected;
  Alcotest.(check int) "drops accounted" 6 (Engine.stats engine).Engine.queue_drops;
  Engine.pump engine;
  Alcotest.(check int) "ingested after pump" 4
    (Engine.stats engine).Engine.events_ingested;
  Alcotest.(check bool) "non-finite arrival rejected" false
    (Engine.offer_arrival engine ~at:Float.nan)

let suite =
  [
    t "bqueue overflow accounting" `Quick bqueue_overflow_drops_and_accounts;
    t "bqueue degenerate capacity" `Quick bqueue_rejects_degenerate_capacity;
    t "health transition matrix" `Quick health_transition_matrix;
    t "health time accounting" `Quick health_time_accounting;
    t "health slugs round-trip" `Quick health_slugs_roundtrip;
    t "backoff grows, caps, resets" `Quick backoff_grows_caps_and_resets;
    t "backoff deterministic" `Quick backoff_deterministic_for_seed;
    t "estimator checkpoint round-trip" `Quick estimator_checkpoint_roundtrip;
    prop_estimator_roundtrip;
    t "estimator of_json validates" `Quick estimator_of_json_validates;
    t "checkpoint json round-trip" `Quick checkpoint_json_roundtrip;
    t "checkpoint version gate" `Quick checkpoint_version_gate;
    t "checkpoint file atomic" `Quick checkpoint_file_roundtrip_atomic;
    t "engine cold start" `Quick engine_cold_start_matches_static_optimum;
    t "engine degrades, holds incumbent" `Quick engine_degrades_and_recovers;
    t "engine re-solves on drift" `Quick engine_recovers_without_faults;
    t "engine crash restore bit-identical" `Quick
      engine_checkpoint_crash_restore_bit_identical;
    t "engine rejects foreign checkpoint" `Quick
      engine_rejects_foreign_checkpoint;
    t "engine safe mode recovers" `Quick engine_safe_mode_recovers_on_resolve;
    t "engine bounded queue" `Quick engine_bounded_queue_backpressure;
  ]
