open Dpm_sim
open Dpm_prob

let t = Alcotest.test_case

let collect w rng ~n =
  let rec go now acc k =
    if k = 0 then List.rev acc
    else
      match Workload.next_arrival w rng ~now with
      | None -> List.rev acc
      | Some t -> go t (t :: acc) (k - 1)
  in
  go 0.0 [] n

let poisson_rate_recovered () =
  let w = Workload.poisson ~rate:0.25 in
  let arrivals = collect w (Test_util.rng ()) ~n:50_000 in
  let last = List.nth arrivals (List.length arrivals - 1) in
  Test_util.check_relative ~rel:0.02 "empirical rate" 0.25
    (float_of_int (List.length arrivals) /. last)

let poisson_strictly_increasing () =
  let w = Workload.poisson ~rate:2.0 in
  let arrivals = collect w (Test_util.rng ()) ~n:1_000 in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if b <= a then Alcotest.failf "non-increasing arrivals %g %g" a b;
        check rest
    | _ -> ()
  in
  check arrivals

let piecewise_rates_by_segment () =
  (* 0..1000s at rate 2, afterwards rate 0.2. *)
  let w = Workload.piecewise ~segments:[ (1000.0, 2.0) ] ~final_rate:0.2 in
  let arrivals = collect w (Test_util.rng ()) ~n:10_000 in
  let early = List.filter (fun t -> t < 1000.0) arrivals in
  let late = List.filter (fun t -> t >= 1000.0 && t < 11_000.0) arrivals in
  Test_util.check_relative ~rel:0.1 "early segment rate" 2.0
    (float_of_int (List.length early) /. 1000.0);
  Test_util.check_relative ~rel:0.1 "late segment rate" 0.2
    (float_of_int (List.length late) /. 10_000.0)

let piecewise_validation () =
  Test_util.check_raises_invalid "non-increasing boundaries" (fun () ->
      ignore (Workload.piecewise ~segments:[ (5.0, 1.0); (3.0, 1.0) ] ~final_rate:1.0));
  Test_util.check_raises_invalid "negative rate" (fun () ->
      ignore (Workload.piecewise ~segments:[] ~final_rate:(-1.0)));
  (* Zero rates are legal since the fleet layer routes silent windows:
     an all-quiet stream is empty, not invalid. *)
  let quiet = Workload.piecewise ~segments:[] ~final_rate:0.0 in
  Alcotest.(check bool) "all-quiet stream is empty" true
    (Workload.next_arrival quiet (Test_util.rng ()) ~now:0.0 = None)

let mmpp_mean_rate_between_phases () =
  (* Symmetric two-phase MMPP switching fast relative to nothing:
     long-run rate = average of the two phase rates. *)
  let w =
    Workload.mmpp ~rates:[| 0.2; 2.0 |]
      ~switch_rate:[| [| 0.0; 0.05 |]; [| 0.05; 0.0 |] |]
  in
  let arrivals = collect w (Test_util.rng ()) ~n:60_000 in
  let last = List.nth arrivals (List.length arrivals - 1) in
  Test_util.check_relative ~rel:0.15 "long-run MMPP rate" 1.1
    (float_of_int (List.length arrivals) /. last)

let mmpp_burstier_than_poisson () =
  (* Index of dispersion of counts > 1 for an MMPP with distinct
     phase rates. *)
  let sample_counts w rng ~window ~n =
    let counts = Array.make n 0 in
    let rec go now =
      match Workload.next_arrival w rng ~now with
      | None -> ()
      | Some t ->
          let bucket = int_of_float (t /. window) in
          if bucket < n then begin
            counts.(bucket) <- counts.(bucket) + 1;
            go t
          end
    in
    go 0.0;
    counts
  in
  let dispersion counts =
    let stats = Stat.Welford.create () in
    Array.iter (fun c -> Stat.Welford.add stats (float_of_int c)) counts;
    Stat.Welford.variance stats /. Stat.Welford.mean stats
  in
  let mmpp =
    Workload.mmpp ~rates:[| 0.1; 3.0 |]
      ~switch_rate:[| [| 0.0; 0.02 |]; [| 0.02; 0.0 |] |]
  in
  let poisson = Workload.poisson ~rate:1.55 in
  let d_mmpp = dispersion (sample_counts mmpp (Test_util.rng ()) ~window:10.0 ~n:2000) in
  let d_poisson =
    dispersion (sample_counts poisson (Test_util.rng ()) ~window:10.0 ~n:2000)
  in
  Alcotest.(check bool) "MMPP over-dispersed" true (d_mmpp > 2.0 *. d_poisson);
  Alcotest.(check bool) "Poisson dispersion near 1" true
    (d_poisson > 0.7 && d_poisson < 1.4)

let trace_replay () =
  let w = Workload.trace [ 1.0; 2.5; 7.0 ] in
  let rng = Test_util.rng () in
  Alcotest.(check (option (float 1e-12))) "first" (Some 1.0)
    (Workload.next_arrival w rng ~now:0.0);
  Alcotest.(check (option (float 1e-12))) "second" (Some 2.5)
    (Workload.next_arrival w rng ~now:1.0);
  Alcotest.(check (option (float 1e-12))) "third" (Some 7.0)
    (Workload.next_arrival w rng ~now:2.5);
  Alcotest.(check (option (float 1e-12))) "exhausted" None
    (Workload.next_arrival w rng ~now:7.0);
  Test_util.check_raises_invalid "non-increasing trace" (fun () ->
      ignore (Workload.trace [ 2.0; 1.0 ]))

let mean_rate_hints () =
  Test_util.check_close "poisson hint" 0.5
    (Workload.mean_rate_hint (Workload.poisson ~rate:0.5));
  Test_util.check_relative ~rel:1e-9 "trace hint" 1.0
    (Workload.mean_rate_hint (Workload.trace [ 1.0; 2.0; 3.0 ]))

let determinism () =
  let run seed =
    let w = Workload.poisson ~rate:1.0 in
    collect w (Rng.create seed) ~n:100
  in
  Alcotest.(check bool) "same seed same stream" true (run 5L = run 5L);
  Alcotest.(check bool) "different seed different stream" true (run 5L <> run 6L)

let suite =
  [
    t "poisson rate" `Slow poisson_rate_recovered;
    t "poisson increasing" `Quick poisson_strictly_increasing;
    t "piecewise segments" `Slow piecewise_rates_by_segment;
    t "piecewise validation" `Quick piecewise_validation;
    t "mmpp long-run rate" `Slow mmpp_mean_rate_between_phases;
    t "mmpp burstiness" `Slow mmpp_burstier_than_poisson;
    t "trace replay" `Quick trace_replay;
    t "mean rate hints" `Quick mean_rate_hints;
    t "determinism" `Quick determinism;
  ]
