open Dpm_core
open Dpm_sim

let t = Alcotest.test_case

let run_traced ?(capacity = 65_536) ?(n = 2_000) () =
  let sys = Paper_instance.system () in
  let trace = Trace.create ~capacity () in
  let r =
    Power_sim.run ~seed:31L ~sys ~observer:(Trace.observer trace)
      ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate sys))
      ~controller:(Controller.greedy sys)
      ~stop:(Power_sim.Requests n) ()
  in
  (trace, r)

let records_every_event () =
  let trace, r = run_traced () in
  (* Every arrival/loss/service/switch event lands one snapshot. *)
  let expected =
    r.Power_sim.generated + r.Power_sim.completed + r.Power_sim.switch_count
  in
  Alcotest.(check int) "snapshot count" expected (Trace.length trace);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped trace)

let snapshots_chronological () =
  let trace, _ = run_traced () in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Power_sim.snap_time <= b.Power_sim.snap_time && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "nondecreasing times" true (sorted (Trace.snapshots trace))

let ring_buffer_eviction () =
  let trace, r = run_traced ~capacity:100 () in
  Alcotest.(check int) "keeps capacity" 100 (Trace.length trace);
  let expected =
    r.Power_sim.generated + r.Power_sim.completed + r.Power_sim.switch_count
  in
  Alcotest.(check int) "drops the rest" (expected - 100) (Trace.dropped trace);
  (* The retained window is the *latest* events. *)
  (match Trace.snapshots trace with
  | first :: _ ->
      Alcotest.(check bool) "window is recent" true
        (first.Power_sim.snap_time > 0.0)
  | [] -> Alcotest.fail "empty trace")

let mode_intervals_cover_modes () =
  let trace, _ = run_traced () in
  let intervals = Trace.mode_intervals trace in
  Alcotest.(check bool) "several runs" true (List.length intervals > 10);
  List.iter
    (fun (start, stop, mode) ->
      if stop < start then Alcotest.fail "interval ends before it starts";
      if mode < 0 || mode > 2 then Alcotest.failf "unknown mode %d" mode)
    intervals;
  (* Consecutive intervals have different modes. *)
  let rec alternating = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) -> a <> b && alternating rest
    | _ -> true
  in
  Alcotest.(check bool) "runs are maximal" true (alternating intervals)

let csv_shape () =
  let trace, _ = run_traced ~n:50 () in
  let csv = Trace.to_csv trace in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "comment + header + rows"
    (Trace.length trace + 2)
    (List.length lines);
  (match lines with
  | comment :: header :: _ ->
      Alcotest.(check string) "truncation comment"
        (Printf.sprintf "# length=%d dropped=%d" (Trace.length trace)
           (Trace.dropped trace))
        comment;
      Alcotest.(check string) "header"
        "time,event,mode,queue,switching_to,in_transfer" header
  | _ -> Alcotest.fail "csv too short");
  List.iteri
    (fun i line ->
      if i > 1 && List.length (String.split_on_char ',' line) <> 6 then
        Alcotest.failf "row %d malformed: %s" i line)
    lines

let csv_server_column () =
  let trace, _ = run_traced ~n:50 () in
  (* The opt-in column changes only what it must: header gains
     ",server", every row gains ",<id>"; the plain shape is the
     byte-identical golden one. *)
  let plain = Trace.to_csv trace in
  let tagged = Trace.to_csv ~server:3 trace in
  let plain_lines = String.split_on_char '\n' (String.trim plain) in
  let tagged_lines = String.split_on_char '\n' (String.trim tagged) in
  Alcotest.(check int) "same row count" (List.length plain_lines)
    (List.length tagged_lines);
  List.iteri
    (fun i (p, g) ->
      if i = 0 then Alcotest.(check string) "comment unchanged" p g
      else if i = 1 then
        Alcotest.(check string) "header gains server column"
          "time,event,mode,queue,switching_to,in_transfer,server" g
      else begin
        Alcotest.(check string) (Printf.sprintf "row %d tagged" i) (p ^ ",3") g;
        if List.length (String.split_on_char ',' g) <> 7 then
          Alcotest.failf "row %d not 7 columns: %s" i g
      end)
    (List.combine plain_lines tagged_lines)

let csv_reports_truncation () =
  let trace, _ = run_traced ~capacity:100 () in
  let csv = Trace.to_csv trace in
  match String.split_on_char '\n' csv with
  | comment :: _ ->
      Alcotest.(check string) "clipped ring announces itself"
        (Printf.sprintf "# length=100 dropped=%d" (Trace.dropped trace))
        comment;
      Alcotest.(check bool) "something was dropped" true
        (Trace.dropped trace > 0)
  | [] -> Alcotest.fail "empty csv"

let validation () =
  Test_util.check_raises_invalid "capacity" (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let suite =
  [
    t "records every event" `Quick records_every_event;
    t "chronological" `Quick snapshots_chronological;
    t "ring eviction" `Quick ring_buffer_eviction;
    t "mode intervals" `Quick mode_intervals_cover_modes;
    t "csv shape" `Quick csv_shape;
    t "csv server column" `Quick csv_server_column;
    t "csv reports truncation" `Quick csv_reports_truncation;
    t "validation" `Quick validation;
  ]
