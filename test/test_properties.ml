(* Property-based cross-method oracle: the repository carries three
   independent routes to the average-cost optimum (policy iteration,
   relative value iteration on the uniformized chain, the
   occupation-measure LP) and two routes to a policy's metrics
   (analytic steady state, event-driven simulation).  On random
   systems they must all tell the same story — this is the trust
   anchor for cached and warm-started results being interchangeable
   with cold solves. *)

open Dpm_core

(* Random systems with the big-M self-switch rate lowered to 1e3:
   value iteration contracts at O(real rates / M) per sweep, so the
   default 1e6 would need millions of sweeps (the ablation suite
   measures exactly that); at 1e3 all three solvers are fast and the
   big-M bias is still below the 1e-6 agreement tolerance. *)
let sys_gen_m3 =
  QCheck2.Gen.(
    Test_random_systems.sp_gen >>= fun sp ->
    int_range 1 4 >>= fun queue_capacity ->
    float_range 0.05 1.5 >>= fun arrival_rate ->
    return
      (Sys_model.create ~self_switch_rate:1e3 ~sp ~queue_capacity
         ~arrival_rate ()))

let prop_pi_equals_lp =
  Test_util.qtest ~count:30 "policy iteration and LP agree on the optimum"
    sys_gen_m3
    (fun sys ->
      let m = Sys_model.to_ctmdp sys ~weight:1.0 in
      let pi = Dpm_ctmdp.Policy_iteration.solve m in
      let lp = Dpm_ctmdp.Lp_solver.solve m in
      Float.abs (pi.Dpm_ctmdp.Policy_iteration.gain -. lp.Dpm_ctmdp.Lp_solver.gain)
      <= 1e-6 *. (1.0 +. Float.abs pi.Dpm_ctmdp.Policy_iteration.gain))

let prop_pi_equals_vi =
  Test_util.qtest ~count:15 "value iteration brackets the PI optimum"
    sys_gen_m3
    (fun sys ->
      let m = Sys_model.to_ctmdp sys ~weight:1.0 in
      let pi = Dpm_ctmdp.Policy_iteration.solve m in
      let vi = Dpm_ctmdp.Value_iteration.solve ~tol:1e-9 ~max_iter:500_000 m in
      let mid =
        0.5
        *. (vi.Dpm_ctmdp.Value_iteration.gain_lower
           +. vi.Dpm_ctmdp.Value_iteration.gain_upper)
      in
      vi.Dpm_ctmdp.Value_iteration.converged
      && Float.abs (mid -. pi.Dpm_ctmdp.Policy_iteration.gain)
         <= 1e-6 *. (1.0 +. Float.abs pi.Dpm_ctmdp.Policy_iteration.gain))

(* The analytic identity W = L / throughput is Little's law {e by
   definition} in Analytic (avg_waiting_time is computed that way), so
   asserting it on the analytic side only guards the definition from
   refactors.  The substantive check is the simulator's: its
   time-averaged queue length and its per-request sojourn times come
   from completely independent accumulators, and Little's law must
   emerge rather than being built in. *)
let prop_littles_law_analytic =
  Test_util.qtest ~count:60 "analytic metrics satisfy Little's law"
    Test_random_systems.sys_gen
    (fun sys ->
      let m = Analytic.of_actions sys ~actions:(Policies.greedy sys) in
      m.Analytic.throughput <= 0.0
      || Float.abs
           ((m.Analytic.avg_waiting_time *. m.Analytic.throughput)
           -. m.Analytic.avg_waiting_requests)
         <= 1e-9 *. (1.0 +. m.Analytic.avg_waiting_requests))

let prop_littles_law_simulated =
  Test_util.qtest ~count:10 "Little's law emerges from simulation"
    Test_random_systems.sys_gen
    (fun sys ->
      if Sys_model.queue_capacity sys < 2 then true
      else begin
        let r =
          Dpm_sim.Power_sim.run ~seed:4242L ~sys
            ~workload:
              (Dpm_sim.Workload.poisson ~rate:(Sys_model.arrival_rate sys))
            ~controller:(Dpm_sim.Controller.greedy sys)
            ~stop:(Dpm_sim.Power_sim.Requests 30_000)
            ()
        in
        let completion_rate =
          float_of_int r.Dpm_sim.Power_sim.completed
          /. r.Dpm_sim.Power_sim.duration
        in
        let little = r.Dpm_sim.Power_sim.avg_waiting_time *. completion_rate in
        (* 5% relative plus a small absolute slack: the two sides use
           independent accumulators and a finite run leaves a few
           requests in flight. *)
        Float.abs (little -. r.Dpm_sim.Power_sim.avg_waiting_requests)
        <= Float.max
             (0.05 *. r.Dpm_sim.Power_sim.avg_waiting_requests)
             0.05
      end)

(* NOTE the stationarity assumption: this property feeds the simulator
   a stationary Poisson source at the model's own rate, so comparing
   whole-run averages against one analytic steady state is sound.  On
   a non-stationary workload the whole-run average mixes phases and
   matches no single model — that regime is covered per segment by
   [prop_segmented_stationary_containment] below and by the Dpm_adapt
   harness, never by this whole-run check. *)
let prop_sim_within_ci =
  Test_util.qtest ~count:20 ~print:Test_random_systems.describe_sys
    "replicated simulation CIs contain the analytic values"
    Test_random_systems.sys_gen
    (fun sys ->
      if Sys_model.queue_capacity sys < 2 then true
        (* Q = 1 is dominated by the documented transfer-boundary
           artifact; see test_random_systems.ml. *)
      else begin
        let sol = Optimize.solve ~weight:1.0 sys in
        let runs =
          Dpm_sim.Power_sim.replicate ~n:4 ~seed:101L ~sys
            ~workload:(fun () ->
              Dpm_sim.Workload.poisson ~rate:(Sys_model.arrival_rate sys))
            ~controller:(fun () -> Dpm_sim.Controller.of_solution sys sol)
            ~stop:(Dpm_sim.Power_sim.Requests 20_000)
            ()
        in
        let s = Dpm_sim.Summary.of_results runs in
        (* The modelcheck containment pattern, widened for random
           systems: inside the 95% interval up to the same hybrid
           slack test_random_systems uses (20% relative / 0.2
           absolute) for the model-vs-simulator transfer-boundary
           acceptance difference, which dominates near saturation. *)
        let near (e : Dpm_sim.Summary.estimate) x =
          Float.abs (x -. e.Dpm_sim.Summary.mean)
          <= (2.0 *. e.Dpm_sim.Summary.ci95_half_width)
             +. Float.max (0.2 *. Float.abs x) 0.2
        in
        let m = sol.Optimize.metrics in
        near s.Dpm_sim.Summary.power m.Analytic.power
        && near s.Dpm_sim.Summary.waiting_requests
             m.Analytic.avg_waiting_requests
      end)

(* Per-segment version of the containment check: under a stationary
   source every segment of a run is a shorter look at the same steady
   state, so each segment's CI (wider, since each segment holds less
   data) must contain the same analytic value.  This is the property
   that licenses Summary.of_segment_results as the summary to use on
   non-stationary workloads: segment summaries are exact restrictions
   of the global accumulators, shown here where the truth is known. *)
let prop_segmented_stationary_containment =
  Test_util.qtest ~count:10 ~print:Test_random_systems.describe_sys
    "per-segment CIs contain the analytic values on a stationary source"
    Test_random_systems.sys_gen
    (fun sys ->
      if Sys_model.queue_capacity sys < 2 then true
      else begin
        let sol = Optimize.solve ~weight:1.0 sys in
        let horizon = 30_000.0 in
        let boundaries = [ 10_000.0; 20_000.0 ] in
        let runs =
          Dpm_sim.Power_sim.replicate ~n:4 ~seed:103L ~segments:boundaries
            ~sys
            ~workload:(fun () ->
              Dpm_sim.Workload.poisson ~rate:(Sys_model.arrival_rate sys))
            ~controller:(fun () -> Dpm_sim.Controller.of_solution sys sol)
            ~stop:(Dpm_sim.Power_sim.Sim_time horizon)
            ()
        in
        let per_seg = Dpm_sim.Summary.of_segment_results runs in
        let near (e : Dpm_sim.Summary.estimate) x =
          Float.abs (x -. e.Dpm_sim.Summary.mean)
          <= (2.0 *. e.Dpm_sim.Summary.ci95_half_width)
             +. Float.max (0.25 *. Float.abs x) 0.25
        in
        let m = sol.Optimize.metrics in
        Array.for_all
          (fun (s : Dpm_sim.Summary.t) ->
            near s.Dpm_sim.Summary.power m.Analytic.power
            && near s.Dpm_sim.Summary.waiting_requests
                 m.Analytic.avg_waiting_requests)
          per_seg
      end)

(* Degenerate fleet: a 1-server fleet is exactly the single-server
   problem, so routing (the whole stream to server 0) plus the
   fleet's per-server solve must land on the golden pins — same gain,
   same metrics, same per-state policy.  This anchors the fleet layer
   to the paper reproduction. *)
let degenerate_fleet_reduces_to_golden () =
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  List.iter
    (fun (weight, gain, power, waiting, actions) ->
      let spec =
        Dpm_fleet.Spec.create ~weight
          [
            Dpm_fleet.Spec.group ~name:"paper"
              ~sp:(Paper_instance.service_provider ())
              ~queue_capacity:Paper_instance.queue_capacity ~count:1 ();
          ]
      in
      let d =
        Dpm_fleet.Deploy.resolve ~domains:1 spec
          ~total_rate:Paper_instance.arrival_rate ~active:1
      in
      Alcotest.(check int)
        (Printf.sprintf "clean solve at w=%g" weight)
        0
        (List.length d.Dpm_fleet.Deploy.failures);
      let s =
        match d.Dpm_fleet.Deploy.servers.(0) with
        | Some s -> s
        | None -> Alcotest.fail "server 0 missing"
      in
      let sol =
        match s.Dpm_fleet.Deploy.solution with
        | Some sol -> sol
        | None -> Alcotest.fail "server 0 has no solution"
      in
      Test_util.check_close ~tol:1e-9
        (Printf.sprintf "fleet gain = golden gain at w=%g" weight)
        gain sol.Optimize.gain;
      Test_util.check_close ~tol:1e-9
        (Printf.sprintf "fleet power at w=%g" weight)
        power sol.Optimize.metrics.Analytic.power;
      Test_util.check_close ~tol:1e-9
        (Printf.sprintf "fleet waiting at w=%g" weight)
        waiting sol.Optimize.metrics.Analytic.avg_waiting_requests;
      Alcotest.(check (array int))
        (Printf.sprintf "fleet policy at w=%g" weight)
        actions s.Dpm_fleet.Deploy.actions)
    Test_golden.pins

let suite =
  [
    prop_pi_equals_lp;
    prop_pi_equals_vi;
    prop_littles_law_analytic;
    prop_littles_law_simulated;
    prop_sim_within_ci;
    prop_segmented_stationary_containment;
    Alcotest.test_case "1-server fleet reproduces the golden pins" `Quick
      degenerate_fleet_reduces_to_golden;
  ]
