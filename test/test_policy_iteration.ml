open Dpm_ctmdp

let t = Alcotest.test_case

(* An M/M/1/2 admission-control-flavored CTMDP: in each queue state the
   controller picks a service speed; faster speed costs more per unit
   time but drains the queue (holding cost). *)
let speed_control ~holding ~fast_cost =
  let lam = 1.0 in
  Model.create ~num_states:3 (fun i ->
      let arrivals = if i < 2 then [ (i + 1, lam) ] else [] in
      let serve rate = if i > 0 then [ (i - 1, rate) ] else [] in
      let hold = holding *. float_of_int i in
      [
        { Model.action = 0 (* slow *); rates = arrivals @ serve 1.5; cost = hold +. 1.0 };
        { Model.action = 1 (* fast *); rates = arrivals @ serve 4.0; cost = hold +. fast_cost };
      ])

let evaluation_matches_hand_solution () =
  (* Fixed policy on a 2-state chain: gain = stationary cost. *)
  let m =
    Model.create ~num_states:2 (fun i ->
        if i = 0 then [ { Model.action = 0; rates = [ (1, 1.0) ]; cost = 4.0 } ]
        else [ { Model.action = 0; rates = [ (0, 3.0) ]; cost = 8.0 } ])
  in
  let p = Policy.uniform_first m in
  let e = Policy_iteration.evaluate m p in
  (* pi = (0.75, 0.25) -> gain = 5. *)
  Test_util.check_close ~tol:1e-10 "gain" 5.0 e.Policy_iteration.gain;
  Test_util.check_close ~tol:1e-10 "reference bias" 0.0 e.Policy_iteration.bias.(0);
  (* Bias equation at state 0: c0 - g + G00 v0 + G01 v1 = 0
     -> 4 - 5 + 1*(v1 - 0) = 0 -> v1 = 1. *)
  Test_util.check_close ~tol:1e-10 "bias state 1" 1.0 e.Policy_iteration.bias.(1)

let solve_matches_brute_force () =
  List.iter
    (fun (holding, fast_cost) ->
      let m = speed_control ~holding ~fast_cost in
      let r = Policy_iteration.solve m in
      let _, best_gain = Policy_iteration.brute_force m in
      Test_util.check_close ~tol:1e-9
        (Printf.sprintf "optimal gain (h=%g, f=%g)" holding fast_cost)
        best_gain r.Policy_iteration.gain)
    [ (0.1, 3.0); (1.0, 3.0); (5.0, 3.0); (5.0, 1.2); (0.01, 10.0) ]

let cheap_fast_service_always_chosen () =
  (* If fast costs the same as slow, fast dominates wherever there is
     a queue to drain. *)
  let m = speed_control ~holding:2.0 ~fast_cost:1.0 in
  let r = Policy_iteration.solve m in
  Alcotest.(check int) "fast in state 1" 1
    (Policy.action m r.Policy_iteration.policy 1);
  Alcotest.(check int) "fast in state 2" 1
    (Policy.action m r.Policy_iteration.policy 2)

let trace_is_monotone_and_terminates () =
  let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
  let r = Policy_iteration.solve m in
  Alcotest.(check bool) "few iterations" true (r.Policy_iteration.iterations <= 10);
  let gains =
    List.map (fun s -> s.Policy_iteration.evaluation.Policy_iteration.gain)
      r.Policy_iteration.trace
  in
  let rec nonincreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && nonincreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "gains do not increase across iterations" true
    (nonincreasing gains);
  (* Last step reports zero changes. *)
  (match List.rev r.Policy_iteration.trace with
  | last :: _ -> Alcotest.(check int) "fixed point" 0 last.Policy_iteration.changed_states
  | [] -> Alcotest.fail "empty trace")

let solve_from_any_start_same_gain () =
  let m = speed_control ~holding:1.5 ~fast_cost:2.5 in
  let r0 = Policy_iteration.solve m in
  Seq.iter
    (fun p ->
      let r = Policy_iteration.solve ~init:p m in
      Test_util.check_close ~tol:1e-9 "gain independent of start"
        r0.Policy_iteration.gain r.Policy_iteration.gain)
    (Policy.enumerate m)

let gain_invariant_to_reference_state () =
  let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
  let p = Policy.uniform_first m in
  let e0 = Policy_iteration.evaluate ~ref_state:0 m p in
  let e2 = Policy_iteration.evaluate ~ref_state:2 m p in
  Test_util.check_close ~tol:1e-9 "same gain" e0.Policy_iteration.gain
    e2.Policy_iteration.gain;
  (* Biases differ by a constant: v0 - v2 shifts. *)
  let d02 = e0.Policy_iteration.bias.(1) -. e2.Policy_iteration.bias.(1) in
  let d01 = e0.Policy_iteration.bias.(2) -. e2.Policy_iteration.bias.(2) in
  Test_util.check_close ~tol:1e-9 "bias shift constant" d02 d01

let multichain_policies_handled () =
  (* Two absorbing "orbits": the stay/stay policy is multichain and
     its exact evaluation is singular.  evaluate must raise, the
     robust variant must answer, and solve must still find the
     optimum (park in the cheap state). *)
  let m =
    Model.create ~num_states:2 (fun i ->
        if i = 0 then
          [
            { Model.action = 0; rates = []; cost = 1.0 };
            { Model.action = 1; rates = [ (1, 1.0) ]; cost = 2.0 };
          ]
        else
          [
            { Model.action = 0; rates = []; cost = 1.5 };
            { Model.action = 1; rates = [ (0, 1.0) ]; cost = 2.0 };
          ])
  in
  let stay_stay = Policy.of_actions m [| 0; 0 |] in
  (match Policy_iteration.evaluate m stay_stay with
  | exception Dpm_linalg.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular on the multichain policy");
  let e = Policy_iteration.evaluate_robust m stay_stay in
  (* The restart perturbation anchors the gain at the reference
     orbit's cost rate. *)
  Test_util.check_relative ~rel:1e-6 "perturbed gain" 1.0 e.Policy_iteration.gain;
  let r = Policy_iteration.solve ~init:stay_stay m in
  Test_util.check_relative ~rel:1e-6 "optimal gain" 1.0 r.Policy_iteration.gain;
  Alcotest.(check int) "cheap state stays" 0
    (Policy.action m r.Policy_iteration.policy 0)

(* Random small CTMDPs; brute force confirms optimality. *)
let random_mdp_gen =
  QCheck2.Gen.(
    int_range 2 4 >>= fun n ->
    let choice_gen state =
      map2
        (fun costs extra ->
          (* A cycle edge guarantees unichain under every policy. *)
          let base = ((state + 1) mod n, 0.4 +. Float.abs extra) in
          { Model.action = 0; rates = [ base ]; cost = costs }
        )
        (float_range 0.0 10.0) (float_range 0.1 3.0)
    in
    let alt_gen state =
      map2
        (fun cost r ->
          let second =
            (* Skip the two-hop edge when it would be a self-rate. *)
            if (state + 2) mod n <> state then [ ((state + 2) mod n, r) ] else []
          in
          { Model.action = 1; rates = ((state + 1) mod n, 0.2) :: second; cost })
        (float_range 0.0 10.0) (float_range 0.1 3.0)
    in
    map
      (fun rows -> Model.create ~num_states:n (fun i -> List.nth rows i))
      (flatten_l
         (List.init n (fun i ->
              map2 (fun a b -> [ a; b ]) (choice_gen i) (alt_gen i)))))

let prop_pi_beats_every_policy =
  Test_util.qtest ~count:60 "policy iteration is optimal (brute force)"
    random_mdp_gen (fun m ->
      let r = Policy_iteration.solve m in
      let _, best = Policy_iteration.brute_force m in
      r.Policy_iteration.gain <= best +. 1e-7)

let prop_bias_equations_hold =
  Test_util.qtest ~count:60 "relative value equations hold" random_mdp_gen
    (fun m ->
      let p = Policy.uniform_first m in
      let e = Policy_iteration.evaluate m p in
      let g = Policy.generator m p in
      let c = Policy.cost_vector m p in
      let n = Model.num_states m in
      let ok = ref true in
      for i = 0 to n - 1 do
        let flow = ref 0.0 in
        for j = 0 to n - 1 do
          flow := !flow +. (Dpm_ctmc.Generator.get g i j *. e.Policy_iteration.bias.(j))
        done;
        if Float.abs (c.(i) -. e.Policy_iteration.gain +. !flow) > 1e-7 then
          ok := false
      done;
      !ok)

(* --- guard threading through the evaluation sweeps ------------------

   The ?guard hook must reach the matrix-free and sparse Gauss-Seidel
   loops themselves — not just the policy-improvement loop — so a
   wall-clock deadline (or an injected stall) can abort a wedged
   evaluation mid-sweep.  A guard that raises Deadline_signal must
   propagate out as-is, never be swallowed into the fallback ladder. *)
let signal = Dpm_robust.Error.Deadline_signal { budget_s = 0.0; elapsed_s = 0.0 }

let guard_reaches_evaluation_sweeps () =
  let m = speed_control ~holding:1.0 ~fast_cost:3.0 in
  let p = Policy.uniform_first m in
  List.iter
    (fun (name, eval) ->
      let ticks = ref 0 in
      let guard () =
        incr ticks;
        if !ticks > 1 then raise signal
      in
      (match eval ~guard m p with
      | (_ : Policy_iteration.evaluation) ->
          Alcotest.failf "%s: guard signal swallowed" name
      | exception Dpm_robust.Error.Deadline_signal _ -> ());
      Alcotest.(check bool)
        (name ^ ": guard ticked inside the sweeps")
        true (!ticks > 1))
    [
      ("sparse", fun ~guard m p -> Policy_iteration.evaluate_sparse ~guard m p);
      ( "implicit",
        fun ~guard m p -> Policy_iteration.evaluate_implicit ~guard m p );
    ]

let solve_deadline_covers_implicit_eval () =
  (* An expired deadline entering through solve must abort the
     implicit evaluation path with the typed error, not hang or fall
     back. *)
  let m = speed_control ~holding:1.0 ~fast_cost:3.0 in
  let fired = ref false in
  let guard () =
    fired := true;
    raise signal
  in
  match
    Dpm_robust.Guard.run (fun () ->
        Policy_iteration.solve ~eval:Policy_iteration.Implicit ~guard m)
  with
  | Ok _ -> Alcotest.fail "deadline ignored by the implicit path"
  | Error (Dpm_robust.Error.Deadline_exceeded _) ->
      Alcotest.(check bool) "guard fired" true !fired
  | Error e ->
      Alcotest.failf "unexpected error class: %s"
        (Dpm_robust.Error.to_string e)

let suite =
  [
    t "evaluation hand-checked" `Quick evaluation_matches_hand_solution;
    t "guard reaches evaluation sweeps" `Quick guard_reaches_evaluation_sweeps;
    t "deadline covers implicit eval" `Quick solve_deadline_covers_implicit_eval;
    t "matches brute force" `Quick solve_matches_brute_force;
    t "dominant action chosen" `Quick cheap_fast_service_always_chosen;
    t "trace monotone, terminates" `Quick trace_is_monotone_and_terminates;
    t "start-independent gain" `Quick solve_from_any_start_same_gain;
    t "reference-state invariance" `Quick gain_invariant_to_reference_state;
    t "multichain policies handled" `Quick multichain_policies_handled;
    prop_pi_beats_every_policy;
    prop_bias_equations_hold;
  ]
