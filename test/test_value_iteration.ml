open Dpm_ctmdp

let t = Alcotest.test_case

let speed_control ~holding ~fast_cost =
  let lam = 1.0 in
  Model.create ~num_states:3 (fun i ->
      let arrivals = if i < 2 then [ (i + 1, lam) ] else [] in
      let serve rate = if i > 0 then [ (i - 1, rate) ] else [] in
      let hold = holding *. float_of_int i in
      [
        { Model.action = 0; rates = arrivals @ serve 1.5; cost = hold +. 1.0 };
        { Model.action = 1; rates = arrivals @ serve 4.0; cost = hold +. fast_cost };
      ])

let agrees_with_policy_iteration () =
  List.iter
    (fun (holding, fast_cost) ->
      let m = speed_control ~holding ~fast_cost in
      let pi = Policy_iteration.solve m in
      let vi = Value_iteration.solve ~tol:1e-12 m in
      Alcotest.(check bool) "converged" true vi.Value_iteration.converged;
      Alcotest.(check bool)
        (Printf.sprintf "PI gain within VI bounds (h=%g f=%g)" holding fast_cost)
        true
        (vi.Value_iteration.gain_lower -. 1e-7 <= pi.Policy_iteration.gain
        && pi.Policy_iteration.gain <= vi.Value_iteration.gain_upper +. 1e-7);
      (* The greedy policy read off VI achieves the same gain. *)
      let e = Policy_iteration.evaluate m vi.Value_iteration.policy in
      Test_util.check_close ~tol:1e-6 "VI policy gain" pi.Policy_iteration.gain
        e.Policy_iteration.gain)
    [ (0.1, 3.0); (1.0, 3.0); (5.0, 3.0); (5.0, 1.2) ]

let bounds_tighten () =
  let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
  let loose = Value_iteration.solve ~tol:1e-2 ~max_iter:1_000_000 m in
  let tight = Value_iteration.solve ~tol:1e-10 m in
  Alcotest.(check bool) "tight interval smaller" true
    (tight.Value_iteration.gain_upper -. tight.Value_iteration.gain_lower
    <= loose.Value_iteration.gain_upper -. loose.Value_iteration.gain_lower +. 1e-12)

let iteration_cap_respected () =
  let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
  let r = Value_iteration.solve ~tol:1e-15 ~max_iter:3 m in
  Alcotest.(check bool) "not converged in 3 sweeps" false r.Value_iteration.converged;
  Alcotest.(check int) "stopped at cap" 3 r.Value_iteration.iterations

let single_action_model_evaluates () =
  (* With one action everywhere, VI just evaluates the chain. *)
  let m =
    Model.create ~num_states:2 (fun i ->
        if i = 0 then [ { Model.action = 0; rates = [ (1, 1.0) ]; cost = 4.0 } ]
        else [ { Model.action = 0; rates = [ (0, 3.0) ]; cost = 8.0 } ])
  in
  let r = Value_iteration.solve ~tol:1e-12 m in
  Alcotest.(check bool) "gain near 5" true
    (r.Value_iteration.gain_lower <= 5.0 +. 1e-6
    && 5.0 -. 1e-6 <= r.Value_iteration.gain_upper)

let implicit_kernel_bit_identical () =
  (* The flattened Bigarray sweep kernel performs the same arithmetic
     in the same order as the boxed reference, so everything — values,
     bounds, policy, iteration count — must match bitwise, not merely
     within tolerance.  Checked on the small speed-control model and
     on a composed paper system. *)
  let check label m =
    let reference = Value_iteration.solve ~tol:1e-10 m in
    let implicit =
      Value_iteration.solve ~tol:1e-10 ~eval:Policy_iteration.Implicit m
    in
    Alcotest.(check bool)
      (label ^ ": bit-identical values")
      true
      (reference.Value_iteration.values = implicit.Value_iteration.values);
    Alcotest.(check bool)
      (label ^ ": identical bounds")
      true
      (reference.Value_iteration.gain_lower
       = implicit.Value_iteration.gain_lower
      && reference.Value_iteration.gain_upper
         = implicit.Value_iteration.gain_upper);
    Alcotest.(check int)
      (label ^ ": identical sweep count")
      reference.Value_iteration.iterations implicit.Value_iteration.iterations;
    Alcotest.(check bool)
      (label ^ ": identical policy")
      true
      (Policy.actions m reference.Value_iteration.policy
      = Policy.actions m implicit.Value_iteration.policy)
  in
  check "speed-control" (speed_control ~holding:2.0 ~fast_cost:3.0);
  let sys = Dpm_core.Paper_instance.system () in
  check "paper instance" (Dpm_core.Sys_model.to_ctmdp sys ~weight:1.0)

let suite =
  [
    t "agrees with policy iteration" `Quick agrees_with_policy_iteration;
    t "implicit sweep kernel is bit-identical" `Quick
      implicit_kernel_bit_identical;
    t "bounds tighten with tol" `Quick bounds_tighten;
    t "iteration cap" `Quick iteration_cap_respected;
    t "single-action evaluation" `Quick single_action_model_evaluates;
  ]
