open Dpm_obs

let t = Alcotest.test_case

(* --- registry basics ------------------------------------------------ *)

let counters_and_gauges () =
  let r = Metrics.create () in
  Alcotest.(check bool) "fresh registry is empty" true (Metrics.is_empty r);
  let c = Metrics.counter r "events" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  (* Re-registration returns the same underlying cell. *)
  Metrics.incr (Metrics.counter r "events");
  (match Metrics.find r "events" with
  | Some (Metrics.Counter_value n) -> Alcotest.(check int) "count" 8 n
  | _ -> Alcotest.fail "expected a counter");
  let g = Metrics.gauge r "depth" in
  Metrics.set g 3.0;
  Metrics.set_max g 1.0;
  (* lower: ignored *)
  Metrics.set_max g 7.5;
  (match Metrics.find r "depth" with
  | Some (Metrics.Gauge_value x) -> Alcotest.(check (float 0.0)) "hwm" 7.5 x
  | _ -> Alcotest.fail "expected a gauge");
  Alcotest.(check bool) "missing name" true (Metrics.find r "nope" = None)

let kind_mismatch_rejected () =
  let r = Metrics.create () in
  ignore (Metrics.counter r "m");
  Test_util.check_raises_invalid "counter as gauge" (fun () ->
      ignore (Metrics.gauge r "m"))

let histogram_bucket_boundaries () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~buckets:[| 1.0; 2.0 |] "h" in
  (* A value equal to a bound lands in that bound's bucket (le
     semantics); above every bound lands in the overflow bucket. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 99.0 ];
  match Metrics.find r "h" with
  | Some (Metrics.Histogram_value { bounds; counts; sum; observations }) ->
      Alcotest.(check (array (float 0.0))) "bounds" [| 1.0; 2.0 |] bounds;
      Alcotest.(check (array int)) "per-bucket counts" [| 2; 2; 1 |] counts;
      Alcotest.(check int) "observations" 5 observations;
      Test_util.check_close ~tol:1e-12 "sum" 104.0 sum
  | _ -> Alcotest.fail "expected a histogram"

let histogram_bad_buckets () =
  let r = Metrics.create () in
  Test_util.check_raises_invalid "non-increasing" (fun () ->
      ignore (Metrics.histogram r ~buckets:[| 1.0; 1.0 |] "bad"));
  Test_util.check_raises_invalid "empty" (fun () ->
      ignore (Metrics.histogram r ~buckets:[||] "bad2"))

let timers () =
  let r = Metrics.create () in
  let tm = Metrics.timer r "t" in
  Metrics.record tm 0.25;
  Metrics.record tm 0.5;
  match Metrics.find r "t" with
  | Some (Metrics.Timer_value { events; seconds }) ->
      Alcotest.(check int) "events" 2 events;
      Test_util.check_close ~tol:1e-12 "seconds" 0.75 seconds
  | _ -> Alcotest.fail "expected a timer"

(* --- probe / span --------------------------------------------------- *)

let probe_routes_to_active_registry () =
  let r = Metrics.create () in
  Probe.with_active r (fun () ->
      Probe.incr "c";
      Probe.add "c" 2;
      Probe.set "g" 4.0;
      Probe.record "t" 0.125;
      Alcotest.(check int) "time passes result through" 41
        (Probe.time "t" (fun () -> 41)));
  Alcotest.(check bool) "sink restored" false (Probe.enabled ());
  (match Metrics.find r "c" with
  | Some (Metrics.Counter_value n) -> Alcotest.(check int) "counter" 3 n
  | _ -> Alcotest.fail "expected counter");
  match Metrics.find r "t" with
  | Some (Metrics.Timer_value { events; _ }) ->
      Alcotest.(check int) "two timings" 2 events
  | _ -> Alcotest.fail "expected timer"

let span_nesting () =
  let r = Metrics.create () in
  Probe.with_active r (fun () ->
      Span.with_ "solve" (fun () ->
          Alcotest.(check (list string)) "inside outer" [ "solve" ] (Span.path ());
          Span.with_ "evaluate" (fun () ->
              Alcotest.(check (list string))
                "nested path" [ "solve"; "evaluate" ] (Span.path ()));
          (* Sibling span under the same parent, visited twice. *)
          Span.with_ "improve" ignore;
          Span.with_ "improve" ignore);
      Alcotest.(check (list string)) "unwound" [] (Span.path ()));
  let events name =
    match Metrics.find r name with
    | Some (Metrics.Timer_value { events; _ }) -> events
    | _ -> Alcotest.fail ("no timer " ^ name)
  in
  Alcotest.(check int) "outer span" 1 (events "span.solve");
  Alcotest.(check int) "nested span" 1 (events "span.solve.evaluate");
  Alcotest.(check int) "sibling aggregates" 2 (events "span.solve.improve")

let span_unwinds_on_exception () =
  let r = Metrics.create () in
  Probe.with_active r (fun () ->
      (try Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check (list string)) "stack restored" [] (Span.path ()));
  match Metrics.find r "span.boom" with
  | Some (Metrics.Timer_value { events; _ }) ->
      Alcotest.(check int) "recorded despite raise" 1 events
  | _ -> Alcotest.fail "expected timer"

let disabled_probes_are_free () =
  Probe.set_active None;
  (* The no-op sink must not allocate: this is what makes per-event
     instrumentation of the simulator hot loop affordable when metrics
     are off.  10k probe rounds with even one word allocated per round
     would show up as >= 10k minor words. *)
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Probe.incr "c";
    Probe.set "g" 1.0;
    Probe.set_max "g" 2.0;
    Probe.record "t" 0.5
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f minor words" allocated)
    true (allocated < 1_000.0)

(* --- renderings ----------------------------------------------------- *)

let golden_registry () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r ~help:"LU factorizations" "lu.factorizations") 3;
  Metrics.set (Metrics.gauge r "sim.heap_depth_max") 2.5;
  Metrics.record (Metrics.timer r "policy_iteration.eval_time_seconds") 0.125;
  let h = Metrics.histogram r ~buckets:[| 0.1; 1.0 |] "iterative.residual" in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  Metrics.observe h 2.0;
  r

let golden_json () =
  let expected =
    "{\n\
    \  \"iterative.residual\": {\"observations\": 3, \"sum\": 2.55, \
     \"buckets\": [{\"le\": 0.1, \"count\": 1}, {\"le\": 1, \"count\": 1}, \
     {\"le\": \"+inf\", \"count\": 1}]},\n\
    \  \"lu.factorizations\": 3,\n\
    \  \"policy_iteration.eval_time_seconds\": {\"events\": 1, \"seconds\": \
     0.125},\n\
    \  \"sim.heap_depth_max\": 2.5\n\
     }\n"
  in
  Alcotest.(check string) "stable JSON" expected (Report.to_json (golden_registry ()))

let golden_prometheus () =
  let expected =
    "# TYPE dpm_iterative_residual histogram\n\
     dpm_iterative_residual_bucket{le=\"0.1\"} 1\n\
     dpm_iterative_residual_bucket{le=\"1\"} 2\n\
     dpm_iterative_residual_bucket{le=\"+Inf\"} 3\n\
     dpm_iterative_residual_sum 2.55\n\
     dpm_iterative_residual_count 3\n\
     # HELP dpm_lu_factorizations LU factorizations\n\
     # TYPE dpm_lu_factorizations counter\n\
     dpm_lu_factorizations 3\n\
     # TYPE dpm_policy_iteration_eval_time_seconds summary\n\
     dpm_policy_iteration_eval_time_seconds_sum 0.125\n\
     dpm_policy_iteration_eval_time_seconds_count 1\n\
     # TYPE dpm_sim_heap_depth_max gauge\n\
     dpm_sim_heap_depth_max 2.5\n"
  in
  Alcotest.(check string) "stable Prometheus text" expected
    (Report.to_prometheus (golden_registry ()))

let prometheus_escapes_help () =
  let r = Metrics.create () in
  Metrics.incr
    (Metrics.counter r
       ~help:"tricky \"quoted\" help\nsecond line with a back\\slash"
       "tricky.counter");
  let text = Report.to_prometheus r in
  (* Exposition format 0.0.4: HELP text escapes backslash and newline
     (quotes stay bare) so the help can never leak a bogus sample
     line. *)
  Alcotest.(check bool) "help is escaped onto one line" true
    (Test_util.contains_substring text
       "# HELP dpm_tricky_counter tricky \"quoted\" help\\nsecond line with \
        a back\\\\slash\n");
  List.iteri
    (fun i line ->
      if line <> "" then
        let well_formed =
          String.length line > 0
          && (line.[0] = '#'
             || String.length line > 4 && String.sub line 0 4 = "dpm_")
        in
        if not well_formed then
          Alcotest.failf "line %d is neither comment nor sample: %S" i line)
    (String.split_on_char '\n' text)

let prometheus_escapes_label_values () =
  (* The only labels the exporter emits are histogram [le] bounds;
     pin the escaping contract directly on the helper that guards
     them. *)
  Alcotest.(check string) "backslash, quote, newline" "a\\\\b\\\"c\\nd"
    (Report.prom_label_value "a\\b\"c\nd");
  Alcotest.(check string) "help leaves quotes bare" "a\\\\b\"c\\nd"
    (Report.prom_help "a\\b\"c\nd")

let json_never_emits_nan () =
  let r = Metrics.create () in
  Metrics.set (Metrics.gauge r "bad") Float.nan;
  Metrics.set (Metrics.gauge r "worse") Float.infinity;
  let doc = Report.to_json r in
  Alcotest.(check string) "non-finite floats render as null"
    "{\n  \"bad\": null,\n  \"worse\": null\n}\n" doc

let table_mentions_every_metric () =
  let table = Report.to_table (golden_registry ()) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " listed") true
        (Test_util.contains_substring table name))
    [
      "lu.factorizations";
      "sim.heap_depth_max";
      "policy_iteration.eval_time_seconds";
      "iterative.residual";
    ]

(* --- end-to-end: instrumented solver -------------------------------- *)

let solver_populates_registry () =
  let r = Metrics.create () in
  Probe.with_active r (fun () ->
      let sys = Dpm_core.Paper_instance.system () in
      let model = Dpm_core.Sys_model.to_ctmdp sys ~weight:1.0 in
      ignore (Dpm_ctmdp.Policy_iteration.solve model));
  let counter name =
    match Metrics.find r name with
    | Some (Metrics.Counter_value n) -> n
    | _ -> Alcotest.fail ("no counter " ^ name)
  in
  Alcotest.(check bool) "iterations recorded" true
    (counter "policy_iteration.iterations" >= 1);
  Alcotest.(check bool) "LU factorizations recorded" true
    (counter "lu.factorizations" >= 1);
  match Metrics.find r "policy_iteration.eval_time_seconds" with
  | Some (Metrics.Timer_value { events; seconds }) ->
      Alcotest.(check bool) "one evaluation per iteration" true
        (events = counter "policy_iteration.iterations");
      Alcotest.(check bool) "non-negative time" true (seconds >= 0.0)
  | _ -> Alcotest.fail "no evaluation timer"

let suite =
  [
    t "counters and gauges" `Quick counters_and_gauges;
    t "kind mismatch rejected" `Quick kind_mismatch_rejected;
    t "histogram bucket boundaries" `Quick histogram_bucket_boundaries;
    t "histogram bad buckets" `Quick histogram_bad_buckets;
    t "timers" `Quick timers;
    t "probe routes to active registry" `Quick probe_routes_to_active_registry;
    t "span nesting" `Quick span_nesting;
    t "span unwinds on exception" `Quick span_unwinds_on_exception;
    t "disabled probes are allocation-free" `Quick disabled_probes_are_free;
    t "golden JSON" `Quick golden_json;
    t "golden Prometheus" `Quick golden_prometheus;
    t "Prometheus escapes help" `Quick prometheus_escapes_help;
    t "Prometheus escapes label values" `Quick prometheus_escapes_label_values;
    t "JSON never emits nan" `Quick json_never_emits_nan;
    t "table lists all metrics" `Quick table_mentions_every_metric;
    t "instrumented solver populates registry" `Quick solver_populates_registry;
  ]
