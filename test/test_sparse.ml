open Dpm_linalg

let t = Alcotest.test_case

let s_example () =
  Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 1, 2.0); (1, 0, -1.0); (2, 2, 5.0) ]

let construction () =
  let s = s_example () in
  Alcotest.(check int) "rows" 3 (Sparse.rows s);
  Alcotest.(check int) "nnz" 3 (Sparse.nnz s);
  Test_util.check_close "stored" 2.0 (Sparse.get s 0 1);
  Test_util.check_close "structural zero" 0.0 (Sparse.get s 0 2);
  Test_util.check_raises_invalid "out of range triplet" (fun () ->
      Sparse.of_triplets ~rows:2 ~cols:2 [ (2, 0, 1.0) ])

let duplicates_summed_zeros_dropped () =
  let s =
    Sparse.of_triplets ~rows:2 ~cols:2
      [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, 3.0); (1, 1, -3.0) ]
  in
  Test_util.check_close "summed" 3.0 (Sparse.get s 0 0);
  Alcotest.(check int) "zero-sum entry dropped" 1 (Sparse.nnz s)

let dense_roundtrip () =
  let m = Matrix.of_arrays [| [| 1.0; 0.0; 2.0 |]; [| 0.0; 0.0; -3.0 |] |] in
  let s = Sparse.of_dense m in
  Alcotest.(check int) "nnz skips zeros" 3 (Sparse.nnz s);
  Alcotest.(check bool) "roundtrip" true (Matrix.approx_equal m (Sparse.to_dense s))

let row_iteration_sorted () =
  let s =
    Sparse.of_triplets ~rows:1 ~cols:5 [ (0, 4, 1.0); (0, 1, 2.0); (0, 3, 3.0) ]
  in
  let cols = ref [] in
  Sparse.iter_row s 0 (fun j _ -> cols := j :: !cols);
  Alcotest.(check (list int)) "ascending columns" [ 1; 3; 4 ] (List.rev !cols)

let products_match_dense () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 3.0 |] |] in
  let b = Matrix.of_arrays [| [| 4.0; 0.0 |]; [| 5.0; 6.0 |] |] in
  let sa = Sparse.of_dense a and sb = Sparse.of_dense b in
  Alcotest.(check bool) "mul" true
    (Matrix.approx_equal (Matrix.mul a b) (Sparse.to_dense (Sparse.mul sa sb)));
  Test_util.check_vec "mul_vec" (Matrix.mul_vec a [| 1.0; 2.0 |])
    (Sparse.mul_vec sa [| 1.0; 2.0 |]);
  Test_util.check_vec "vec_mul" (Matrix.vec_mul [| 1.0; 2.0 |] a)
    (Sparse.vec_mul [| 1.0; 2.0 |] sa)

let algebra () =
  let s = s_example () in
  Alcotest.(check bool) "add doubles" true
    (Sparse.approx_equal (Sparse.add s s) (Sparse.scale 2.0 s));
  Alcotest.(check bool) "transpose involution" true
    (Sparse.approx_equal s (Sparse.transpose (Sparse.transpose s)));
  Test_util.check_vec "row_sums" [| 2.0; -1.0; 5.0 |] (Sparse.row_sums s);
  Alcotest.(check int) "identity nnz" 4 (Sparse.nnz (Sparse.identity 4))

let zero_sum_dropping_regression () =
  (* Pins the of_triplets invariant the implicit-operator fallback
     paths rely on (see Sparse.of_triplets doc): duplicate triplets
     that cancel to exactly 0. leave no stored entry — not a stored
     explicit zero — so nnz, iter_row and row_sums all agree that the
     coordinate is structurally absent. *)
  let s =
    Sparse.of_triplets ~rows:3 ~cols:3
      [
        (0, 0, 1.0); (0, 2, 4.0); (0, 2, -4.0);
        (1, 1, 0.5); (1, 1, 0.5);
        (2, 0, -7.0); (2, 0, 7.0); (2, 2, 3.0);
      ]
  in
  Alcotest.(check int) "nnz counts only surviving entries" 3 (Sparse.nnz s);
  Test_util.check_close "cancelled entry reads as zero" 0.0 (Sparse.get s 0 2);
  Test_util.check_close "summed duplicate survives" 1.0 (Sparse.get s 1 1);
  let visited = ref [] in
  for i = 0 to 2 do
    Sparse.iter_row s i (fun j _ -> visited := (i, j) :: !visited)
  done;
  Alcotest.(check (list (pair int int)))
    "iter_row skips cancelled coordinates"
    [ (0, 0); (1, 1); (2, 2) ]
    (List.sort compare !visited)

let mul_vec_into_matches () =
  let s = s_example () in
  let v = [| 0.5; -2.0; 3.0 |] in
  let dst = Vec.create 3 in
  Sparse.mul_vec_into s v ~dst;
  (* Bitwise, not approximate: the doc promises the same accumulation
     order as mul_vec, which the Iterative sweeps rely on. *)
  Alcotest.(check bool) "bitwise equal to mul_vec" true
    (dst = Sparse.mul_vec s v);
  Test_util.check_raises_invalid "dst dimension mismatch" (fun () ->
      Sparse.mul_vec_into s v ~dst:(Vec.create 2))

let sparse_gen =
  QCheck2.Gen.(
    int_range 1 8 >>= fun n ->
    int_range 0 (n * n) >>= fun k ->
    map
      (fun entries -> (n, Sparse.of_triplets ~rows:n ~cols:n entries))
      (list_repeat k
         (map3
            (fun i j v -> (i mod n, j mod n, v))
            (int_range 0 (n - 1))
            (int_range 0 (n - 1))
            (float_range (-10.0) 10.0))))

let prop_matches_dense_mul_vec =
  Test_util.qtest "spmv matches dense" sparse_gen (fun (n, s) ->
      let v = Vec.init n (fun i -> float_of_int i -. 1.5) in
      Vec.approx_equal ~tol:1e-9 (Sparse.mul_vec s v)
        (Matrix.mul_vec (Sparse.to_dense s) v))

let prop_transpose_matches_dense =
  Test_util.qtest "transpose matches dense" sparse_gen (fun (_, s) ->
      Matrix.approx_equal
        (Matrix.transpose (Sparse.to_dense s))
        (Sparse.to_dense (Sparse.transpose s)))

let prop_mul_matches_dense =
  Test_util.qtest "spmm matches dense"
    (QCheck2.Gen.pair sparse_gen sparse_gen)
    (fun ((n1, a), (n2, b)) ->
      n1 <> n2
      || Matrix.approx_equal ~tol:1e-8
           (Matrix.mul (Sparse.to_dense a) (Sparse.to_dense b))
           (Sparse.to_dense (Sparse.mul a b)))

let suite =
  [
    t "construction" `Quick construction;
    t "duplicates and zeros" `Quick duplicates_summed_zeros_dropped;
    t "zero-sum dropping regression" `Quick zero_sum_dropping_regression;
    t "mul_vec_into matches mul_vec" `Quick mul_vec_into_matches;
    t "dense roundtrip" `Quick dense_roundtrip;
    t "row iteration sorted" `Quick row_iteration_sorted;
    t "products match dense" `Quick products_match_dense;
    t "algebra" `Quick algebra;
    prop_matches_dense_mul_vec;
    prop_transpose_matches_dense;
    prop_mul_matches_dense;
  ]
