(* Fleet-level tests: the hierarchical decomposition against the flat
   joint Kronecker oracle, cluster conservation laws, domain-count
   bit-identity of solves and simulations, solve-cache deduplication,
   and chaos degradation (incumbents survive injected solver
   failures).  The oracle discipline mirrors the PI=VI=LP property
   suite: two independent computations of the same measure must
   agree. *)

open Dpm_core
module Spec = Dpm_fleet.Spec
module Deploy = Dpm_fleet.Deploy
module Cluster = Dpm_fleet.Cluster
module Joint = Dpm_fleet.Joint
module Fleet_sim = Dpm_fleet.Fleet_sim
module Solve_cache = Dpm_cache.Solve_cache

let t = Alcotest.test_case

let bits = Int64.bits_of_float

let check_bits msg a b =
  if bits a <> bits b then
    Alcotest.failf "%s: %h <> %h (not bit-identical)" msg a b

(* A deterministic two-group fleet around the paper's SP: distinct
   queue capacities make the models structurally distinct. *)
let two_group_spec ?(count_a = 2) ?(count_b = 1) ?min_active () =
  let sp () = Paper_instance.service_provider () in
  Spec.create ~weight:1.0 ~boot_rate:0.5 ~boot_energy:20.0 ~shutdown_rate:1.0
    ~shutdown_energy:5.0 ?min_active
    [
      Spec.group ~name:"a" ~sp:(sp ()) ~queue_capacity:3 ~count:count_a
        ~off_power:0.1 ();
      Spec.group ~name:"b" ~sp:(sp ()) ~queue_capacity:5 ~count:count_b
        ~off_power:0.1 ~routing_weight:2.0 ();
    ]

(* Random fleets for the property tests: 1-2 groups of random SPs. *)
let spec_gen =
  QCheck2.Gen.(
    int_range 1 2 >>= fun ngroups ->
    list_repeat ngroups Test_random_systems.sp_gen >>= fun sps ->
    list_repeat ngroups (int_range 1 3) >>= fun qs ->
    list_repeat ngroups (int_range 1 3) >>= fun counts ->
    list_repeat ngroups (float_range 0.5 2.0) >>= fun rweights ->
    float_range 0.2 2.0 >>= fun weight ->
    float_range 0.0 10.0 >>= fun boot_e ->
    float_range 0.0 10.0 >>= fun shut_e ->
    let groups =
      List.mapi
        (fun i (((sp, q), c), rw) ->
          Spec.group
            ~name:(Printf.sprintf "g%d" i)
            ~sp ~queue_capacity:q ~count:c ~routing_weight:rw ~off_power:0.2 ())
        (List.combine
           (List.combine (List.combine sps qs) counts)
           rweights)
    in
    return
      (Spec.create ~weight ~boot_rate:0.7 ~boot_energy:boot_e
         ~shutdown_rate:0.9 ~shutdown_energy:shut_e groups))

let describe_spec spec =
  Format.asprintf "%a" Spec.pp spec

(* --- cluster: probability conservation + Little's law ------------ *)

let prop_cluster_conservation =
  Test_util.qtest ~count:20 ~print:(fun (s, _) -> describe_spec s)
    "cluster stationary conserves probability; fleet Little's law holds"
    QCheck2.Gen.(pair spec_gen (float_range 0.1 0.8))
    (fun (spec, per_server_rate) ->
      let n = Spec.num_servers spec in
      let rate = per_server_rate *. float_of_int n in
      (* A two-phase load exercises the phase-switch transitions. *)
      let load = Cluster.cyclic_load [ (rate, 50.0); (0.5 *. rate, 30.0) ] in
      let c = Cluster.solve ~domains:1 spec ~load in
      let total = Array.fold_left ( +. ) 0.0 c.Cluster.stationary in
      let nonneg = Array.for_all (fun p -> p >= -1e-12) c.Cluster.stationary in
      let m = Cluster.measures c in
      let little =
        Float.abs
          ((m.Cluster.fleet_waiting_time *. m.Cluster.fleet_throughput)
          -. m.Cluster.fleet_waiting)
        <= 1e-9 *. (1.0 +. m.Cluster.fleet_waiting)
      in
      (* Accepted throughput can never exceed the offered load. *)
      let offered =
        let nk = Array.length c.Cluster.counts in
        let acc = ref 0.0 in
        Array.iteri
          (fun s p -> acc := !acc +. (p *. load.Cluster.rates.(s / nk)))
          c.Cluster.stationary;
        !acc
      in
      let flow = m.Cluster.fleet_throughput <= offered +. 1e-9 in
      let bounded =
        m.Cluster.expected_active >= float_of_int spec.Spec.min_active -. 1e-9
        && m.Cluster.expected_active <= float_of_int n +. 1e-9
      in
      c.Cluster.failures = []
      && Float.abs (total -. 1.0) <= 1e-9
      && nonneg && little && flow && bounded)

(* --- hierarchical vs flat joint oracle --------------------------- *)

let two_server_gen =
  QCheck2.Gen.(
    pair Test_random_systems.sp_gen Test_random_systems.sp_gen
    >>= fun (spa, spb) ->
    pair (int_range 1 2) (int_range 1 2) >>= fun (qa, qb) ->
    float_range 0.3 1.5 >>= fun weight ->
    float_range 0.1 1.2 >>= fun rate ->
    return
      ( Spec.create ~weight ~min_active:2
          [
            Spec.group ~name:"a" ~sp:spa ~queue_capacity:qa ~count:1 ();
            Spec.group ~name:"b" ~sp:spb ~queue_capacity:qb ~count:1
              ~routing_weight:1.7 ();
          ],
        rate ))

let prop_hierarchical_matches_joint =
  Test_util.qtest ~count:20 ~print:(fun (s, r) ->
      Printf.sprintf "%s at rate %g" (describe_spec s) r)
    "2-server hierarchical solve = flat joint CTMDP oracle (<= 1e-6)"
    two_server_gen
    (fun (spec, rate) ->
      let d = Deploy.resolve ~domains:1 spec ~total_rate:rate ~active:2 in
      (* A failed per-server solve would make the comparison vacuous —
         treat it as a test failure, not a skip. *)
      d.Deploy.failures = []
      &&
      let j = Joint.build d in
      let pi = Joint.stationary j in
      let prod = Joint.product_stationary j in
      let linf =
        let acc = ref 0.0 in
        Array.iteri
          (fun x p -> acc := Float.max !acc (Float.abs (p -. prod.(x))))
          pi;
        !acc
      in
      let joint_gain = Joint.gain j pi in
      let hier_gain = Deploy.gain d in
      let gains =
        Float.abs (joint_gain -. hier_gain)
        <= 1e-6 *. (1.0 +. Float.abs hier_gain)
      in
      let marginals_ok =
        List.for_all
          (fun i ->
            let mg = Joint.marginal j pi ~server:i in
            let servers = Deploy.active_servers d in
            let local =
              match servers.(i).Deploy.solution with
              | Some sol ->
                  sol.Optimize.metrics.Analytic.state_probabilities
              | None -> Alcotest.fail "missing solution"
            in
            let acc = ref 0.0 in
            Array.iteri
              (fun x p -> acc := Float.max !acc (Float.abs (p -. local.(x))))
              mg;
            !acc <= 1e-6)
          [ 0; 1 ]
      in
      linf <= 1e-6 && gains && marginals_ok)

let joint_implicit_agrees () =
  (* The lazy-operator Gauss-Seidel path must reproduce the dense GTH
     stationary on a deterministic 2-server paper fleet. *)
  let spec = two_group_spec ~count_a:1 ~count_b:1 ~min_active:2 () in
  let d = Deploy.resolve ~domains:1 spec ~total_rate:0.4 ~active:2 in
  Alcotest.(check int) "no failures" 0 (List.length d.Deploy.failures);
  let j = Joint.build d in
  let pi = Joint.stationary j in
  let pi' = Joint.stationary_implicit ~tol:1e-13 j in
  let linf = ref 0.0 in
  Array.iteri (fun x p -> linf := Float.max !linf (Float.abs (p -. pi'.(x)))) pi;
  if !linf > 1e-8 then
    Alcotest.failf "implicit vs GTH joint stationary: L_inf %g" !linf

(* --- domain-count bit-identity ----------------------------------- *)

let cluster_domain_identity () =
  let spec = two_group_spec () in
  let load = Cluster.cyclic_load [ (0.9, 40.0); (0.3, 60.0) ] in
  let solve domains =
    Solve_cache.with_capacity 128 (fun () ->
        Cluster.solve ~domains spec ~load)
  in
  let r1 = solve 1 in
  List.iter
    (fun domains ->
      let r = solve domains in
      Alcotest.(check (array int))
        (Printf.sprintf "targets at %d domains" domains)
        r1.Cluster.targets r.Cluster.targets;
      check_bits (Printf.sprintf "gain at %d domains" domains) r1.Cluster.gain
        r.Cluster.gain;
      Array.iteri
        (fun m row ->
          Array.iteri
            (fun ki v ->
              check_bits
                (Printf.sprintf "stay_cost[%d][%d] at %d domains" m ki domains)
                v
                r.Cluster.stay_cost.(m).(ki))
            row)
        r1.Cluster.stay_cost;
      Array.iteri
        (fun s v ->
          check_bits
            (Printf.sprintf "stationary[%d] at %d domains" s domains)
            v r.Cluster.stationary.(s))
        r1.Cluster.stationary)
    [ 2; 4 ]

let fleet_sim_domain_identity () =
  let spec = two_group_spec () in
  let run domains =
    Solve_cache.with_capacity 128 (fun () ->
        Fleet_sim.run ~domains ~seed:7L spec
          ~segments:[ (60.0, 0.9); (140.0, 0.3) ]
          ~final_rate:0.6 ~horizon:240.0)
  in
  let r1 = run 1 in
  List.iter
    (fun domains ->
      let r = run domains in
      let ck name f = Alcotest.(check int) (Printf.sprintf "%s at %d domains" name domains) (f r1) (f r) in
      ck "generated" (fun r -> r.Fleet_sim.generated);
      ck "accepted" (fun r -> r.Fleet_sim.accepted);
      ck "lost" (fun r -> r.Fleet_sim.lost);
      ck "completed" (fun r -> r.Fleet_sim.completed);
      ck "switches" (fun r -> r.Fleet_sim.switches);
      ck "events" (fun r -> r.Fleet_sim.events);
      ck "cache hits" (fun r -> r.Fleet_sim.cache_hits);
      ck "cache misses" (fun r -> r.Fleet_sim.cache_misses);
      ck "resolve failures" (fun r -> r.Fleet_sim.resolve_failures);
      let cf name f =
        check_bits (Printf.sprintf "%s at %d domains" name domains) (f r1) (f r)
      in
      cf "server energy" (fun r -> r.Fleet_sim.server_energy_j);
      cf "off energy" (fun r -> r.Fleet_sim.off_energy_j);
      cf "cluster energy" (fun r -> r.Fleet_sim.cluster_energy_j);
      cf "avg power" (fun r -> r.Fleet_sim.avg_power_w);
      cf "mean sojourn" (fun r -> r.Fleet_sim.avg_waiting_time_s);
      cf "mean active" (fun r -> r.Fleet_sim.avg_active_servers);
      Alcotest.(check int)
        "plan shape" (Array.length r1.Fleet_sim.plan)
        (Array.length r.Fleet_sim.plan);
      Array.iteri
        (fun j (p1 : Fleet_sim.plan_segment) ->
          let p = r.Fleet_sim.plan.(j) in
          Alcotest.(check int)
            (Printf.sprintf "plan active[%d]" j)
            p1.Fleet_sim.seg_active p.Fleet_sim.seg_active)
        r1.Fleet_sim.plan;
      Array.iteri
        (fun i s1 ->
          match (s1, r.Fleet_sim.server_results.(i)) with
          | None, None -> ()
          | Some (a : Dpm_sim.Power_sim.result), Some b ->
              check_bits
                (Printf.sprintf "server %d avg power" i)
                a.Dpm_sim.Power_sim.avg_power b.Dpm_sim.Power_sim.avg_power;
              Alcotest.(check int)
                (Printf.sprintf "server %d completed" i)
                a.Dpm_sim.Power_sim.completed b.Dpm_sim.Power_sim.completed
          | _ -> Alcotest.failf "server %d simulated on one side only" i)
        r1.Fleet_sim.server_results)
    [ 2; 4 ]

(* --- solve-cache deduplication ----------------------------------- *)

let cache_dedup () =
  Solve_cache.with_capacity 64 @@ fun () ->
  let sp = Paper_instance.service_provider () in
  let n = 6 in
  let spec =
    Spec.create ~weight:1.0
      [ Spec.group ~name:"a" ~sp ~queue_capacity:5 ~count:n () ]
  in
  let s0 = Solve_cache.stats () in
  let d = Deploy.resolve ~domains:1 spec ~total_rate:1.2 ~active:n in
  let s1 = Solve_cache.stats () in
  Alcotest.(check int) "N identical servers cost one solve" 1
    (s1.Dpm_cache.Lru.misses - s0.Dpm_cache.Lru.misses);
  Alcotest.(check int) "and N-1 hits" (n - 1)
    (s1.Dpm_cache.Lru.hits - s0.Dpm_cache.Lru.hits);
  Alcotest.(check int) "no failures" 0 (List.length d.Deploy.failures);
  let servers = Deploy.active_servers d in
  Array.iter
    (fun (s : Deploy.server) ->
      Alcotest.(check (array int)) "identical servers share the policy"
        servers.(0).Deploy.actions s.Deploy.actions)
    servers

(* --- chaos: incumbents survive injected solver failure ----------- *)

let chaos_incumbent_survives () =
  (* A capacity-0 cache forces every solve through the guard — a
     cache hit would bypass the injected failure. *)
  Solve_cache.with_capacity 0 @@ fun () ->
  let spec = two_group_spec () in
  let prev = Deploy.resolve ~domains:1 spec ~total_rate:0.8 ~active:3 in
  Alcotest.(check int) "clean baseline" 0 (List.length prev.Deploy.failures);
  let old_env = Sys.getenv_opt "DPM_FAULTS" in
  Unix.putenv "DPM_FAULTS" "stall";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DPM_FAULTS" (Option.value old_env ~default:""))
    (fun () ->
      let plan =
        match Dpm_robust.Fault.of_env () with
        | Some p -> p
        | None -> Alcotest.fail "DPM_FAULTS not picked up"
      in
      let guard =
        Dpm_robust.Guard.compose
          [ Dpm_robust.Fault.guard plan;
            Dpm_robust.Guard.deadline ~seconds:0.0 ]
      in
      let d =
        Deploy.resolve ~domains:1 ~guard ~prev spec ~total_rate:1.1 ~active:3
      in
      (* Typed tally: every active server failed, all with deadline
         class. *)
      Alcotest.(check (list int))
        "every re-solve failed" [ 0; 1; 2 ]
        (List.map fst d.Deploy.failures);
      List.iter
        (fun (_, err) ->
          match err with
          | Dpm_robust.Error.Deadline_exceeded _ -> ()
          | e ->
              Alcotest.failf "unexpected error class: %s"
                (Dpm_robust.Error.to_string e))
        d.Deploy.failures;
      (* Incumbents survive in place. *)
      Array.iteri
        (fun i prev_s ->
          match (prev_s, d.Deploy.servers.(i)) with
          | None, None -> ()
          | Some (p : Deploy.server), Some s ->
              Alcotest.(check (array int))
                (Printf.sprintf "server %d keeps its incumbent policy" i)
                p.Deploy.actions s.Deploy.actions;
              Alcotest.(check bool)
                (Printf.sprintf "server %d marked stale" i)
                false s.Deploy.fresh
          | _ -> Alcotest.failf "server %d active set changed" i)
        prev.Deploy.servers;
      (* Without an incumbent the fallback is always-on, never a
         crash. *)
      let d2 =
        Deploy.resolve ~domains:1 ~guard spec ~total_rate:1.1 ~active:3
      in
      Alcotest.(check int) "fallbacks tallied too" 3
        (List.length d2.Deploy.failures);
      Array.iteri
        (fun i s ->
          match s with
          | None -> ()
          | Some (s : Deploy.server) ->
              Alcotest.(check bool)
                (Printf.sprintf "server %d has no trusted solution" i)
                true (s.Deploy.solution = None);
              let expected =
                Policies.actions_array s.Deploy.sys
                  (Policies.always_on s.Deploy.sys)
              in
              Alcotest.(check (array int))
                (Printf.sprintf "server %d pinned always-on" i)
                expected s.Deploy.actions)
        d2.Deploy.servers)

(* --- fleet simulation sanity ------------------------------------- *)

let fleet_sim_accounting () =
  let spec = two_group_spec () in
  let r =
    Solve_cache.with_capacity 128 (fun () ->
        Fleet_sim.run ~domains:1 ~seed:11L spec
          ~segments:[ (80.0, 1.0); (160.0, 0.25) ]
          ~final_rate:0.7 ~horizon:300.0)
  in
  Alcotest.(check int) "plan covers three stretches" 3
    (Array.length r.Fleet_sim.plan);
  Test_util.check_close ~tol:1e-12 "plan starts at 0" 0.0
    r.Fleet_sim.plan.(0).Fleet_sim.seg_from;
  Test_util.check_close ~tol:1e-12 "plan ends at the horizon" 300.0
    r.Fleet_sim.plan.(2).Fleet_sim.seg_until;
  Alcotest.(check int) "arrival conservation" r.Fleet_sim.generated
    (r.Fleet_sim.accepted + r.Fleet_sim.lost);
  Alcotest.(check bool) "completions within acceptances" true
    (r.Fleet_sim.completed <= r.Fleet_sim.accepted);
  Alcotest.(check bool) "absorbed a real workload" true
    (r.Fleet_sim.generated > 50);
  Alcotest.(check int) "event count composition" r.Fleet_sim.events
    (r.Fleet_sim.generated + r.Fleet_sim.completed + r.Fleet_sim.switches);
  Alcotest.(check bool) "tier energies are nonnegative" true
    (r.Fleet_sim.server_energy_j >= 0.0
    && r.Fleet_sim.off_energy_j >= 0.0
    && r.Fleet_sim.cluster_energy_j >= 0.0);
  Alcotest.(check bool) "mean active within bounds" true
    (r.Fleet_sim.avg_active_servers >= 1.0 -. 1e-9
    && r.Fleet_sim.avg_active_servers <= 3.0 +. 1e-9);
  (* Every simulated server ran the full horizon: per-tier accounting
     splits the whole rectangle [0,horizon] x servers. *)
  Array.iter
    (function
      | None -> ()
      | Some (sr : Dpm_sim.Power_sim.result) ->
          Test_util.check_close ~tol:1e-6 "full-horizon server run" 300.0
            sr.Dpm_sim.Power_sim.duration)
    r.Fleet_sim.server_results;
  Alcotest.(check int) "no solve failures" 0 r.Fleet_sim.resolve_failures;
  (* The cluster table warms the cache, so the deploy phase must be
     hit-dominated: ratio >= (N - k) / N for k distinct models. *)
  let n = r.Fleet_sim.cache_hits + r.Fleet_sim.cache_misses in
  Alcotest.(check bool) "deploy phase is cache-hit dominated" true
    (n = 0
    || float_of_int r.Fleet_sim.cache_hits /. float_of_int n >= 1.0 /. 3.0)

(* --- zero-rate piecewise workloads (fleet routing) --------------- *)

let zero_rate_piecewise () =
  let rng = Test_util.rng () in
  let w =
    Dpm_sim.Workload.piecewise
      ~segments:[ (10.0, 1.5); (20.0, 0.0); (30.0, 2.0) ]
      ~final_rate:0.0
  in
  let rec drain now acc =
    match Dpm_sim.Workload.next_arrival w rng ~now with
    | None -> List.rev acc
    | Some t -> drain t (t :: acc)
  in
  let arrivals = drain 0.0 [] in
  Alcotest.(check bool) "stream produced arrivals" true (arrivals <> []);
  List.iter
    (fun t ->
      if (t >= 10.0 && t < 20.0) || t >= 30.0 then
        Alcotest.failf "arrival %g inside a silent window" t)
    arrivals;
  (* All-quiet workload: the stream is empty, not an infinite loop. *)
  let silent =
    Dpm_sim.Workload.piecewise ~segments:[ (5.0, 0.0) ] ~final_rate:0.0
  in
  Alcotest.(check bool) "all-quiet stream ends immediately" true
    (Dpm_sim.Workload.next_arrival silent rng ~now:0.0 = None);
  (* Negative rates stay rejected. *)
  Test_util.check_raises_invalid "negative rate" (fun () ->
      ignore
        (Dpm_sim.Workload.piecewise ~segments:[ (1.0, -0.5) ] ~final_rate:1.0))

(* --- spec validation --------------------------------------------- *)

let spec_validation () =
  let sp = Paper_instance.service_provider () in
  let g = Spec.group ~name:"a" ~sp ~queue_capacity:5 ~count:2 () in
  Test_util.check_raises_invalid "empty fleet" (fun () ->
      ignore (Spec.create []));
  Test_util.check_raises_invalid "duplicate names" (fun () ->
      ignore (Spec.create [ g; g ]));
  Test_util.check_raises_invalid "min_active too large" (fun () ->
      ignore (Spec.create ~min_active:3 [ g ]));
  Test_util.check_raises_invalid "zero count" (fun () ->
      ignore (Spec.group ~name:"x" ~sp ~queue_capacity:5 ~count:0 ()));
  let spec = Spec.create [ g ] in
  Test_util.check_raises_invalid "bad active" (fun () ->
      ignore (Deploy.resolve ~domains:1 spec ~total_rate:1.0 ~active:3));
  Test_util.check_raises_invalid "bad rate" (fun () ->
      ignore (Deploy.resolve ~domains:1 spec ~total_rate:0.0 ~active:1));
  (* Routing: one active server takes the whole stream, exactly. *)
  check_bits "single active server gets the full rate" 0.7
    (Spec.server_rate spec ~total_rate:0.7 ~active:1 ~server:0);
  Test_util.check_close ~tol:1e-12 "off server gets nothing" 0.0
    (Spec.server_rate spec ~total_rate:0.7 ~active:1 ~server:1)

let suite =
  [
    t "spec validation and routing" `Quick spec_validation;
    prop_cluster_conservation;
    prop_hierarchical_matches_joint;
    t "joint implicit path agrees with GTH" `Quick joint_implicit_agrees;
    t "cluster solve is domain-count bit-identical" `Quick
      cluster_domain_identity;
    t "fleet simulation is domain-count bit-identical" `Slow
      fleet_sim_domain_identity;
    t "N identical servers: 1 miss, N-1 hits" `Quick cache_dedup;
    t "chaos: incumbents survive injected solve failure" `Quick
      chaos_incumbent_survives;
    t "fleet simulation per-tier accounting" `Quick fleet_sim_accounting;
    t "zero-rate piecewise workload" `Quick zero_rate_piecewise;
  ]
