(* Golden regression pins for the paper instance (Table 2/3 regime):
   the optimal gain, the separated power/delay metrics, and the exact
   per-state policy at representative weights.  The values below were
   produced by this repository's own solver; the test exists so a
   future refactor (solver, model builder, cache, warm starts) cannot
   silently drift the reproduction.  Tolerances are 1e-9 — far below
   physical meaning, far above float noise; the policies must match
   exactly. *)

open Dpm_core

(* (weight, gain, power, avg_waiting_requests, actions per state) *)
let pins =
  [
    ( 0.1,
      9.3400113186191298,
      8.9102056215808325,
      4.2980569703829472,
      [| 0; 0; 0; 0; 0; 0; 2; 2; 2; 2; 2; 0; 2; 2; 2; 2; 2; 0; 1; 1; 1; 1; 1 |]
    );
    ( 1.0,
      11.951281331062688,
      10.959834108007252,
      0.99144722305543909,
      [| 0; 0; 0; 0; 0; 0; 2; 0; 0; 0; 2; 0; 2; 2; 0; 0; 2; 0; 1; 0; 0; 0; 0 |]
    );
    ( 5.0,
      14.352171865899177,
      11.803888142719996,
      0.50965674463583766,
      [| 0; 0; 0; 0; 0; 0; 2; 0; 0; 0; 0; 0; 2; 0; 0; 0; 0; 0; 1; 0; 0; 0; 0 |]
    );
    ( 20.0,
      21.997023035436758,
      11.803888142719996,
      0.50965674463583766,
      [| 0; 0; 0; 0; 0; 0; 2; 0; 0; 0; 0; 0; 2; 0; 0; 0; 0; 0; 1; 0; 0; 0; 0 |]
    );
    ( 100.0,
      62.612288673740295,
      12.166742453562815,
      0.5044554622017744,
      [| 0; 0; 0; 0; 0; 0; 2; 0; 0; 0; 0; 0; 2; 0; 1; 1; 1; 1; 1; 0; 0; 0; 0 |]
    );
  ]

let paper_instance_pins () =
  (* Cold solves: the pins must hold independently of cache state. *)
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  let sys = Paper_instance.system () in
  Alcotest.(check int) "state count" 23 (Sys_model.num_states sys);
  List.iter
    (fun (weight, gain, power, waiting, actions) ->
      let s = Optimize.solve ~weight sys in
      Test_util.check_close ~tol:1e-9
        (Printf.sprintf "gain at w=%g" weight)
        gain s.Optimize.gain;
      Test_util.check_close ~tol:1e-9
        (Printf.sprintf "power at w=%g" weight)
        power s.Optimize.metrics.Analytic.power;
      Test_util.check_close ~tol:1e-9
        (Printf.sprintf "waiting at w=%g" weight)
        waiting s.Optimize.metrics.Analytic.avg_waiting_requests;
      if s.Optimize.actions <> actions then
        Alcotest.failf "policy drifted at w=%g: got [|%s|]" weight
          (String.concat "; "
             (Array.to_list (Array.map string_of_int s.Optimize.actions))))
    pins

let warm_path_matches_pins () =
  (* The same pins must hold when the answers come through the warm
     wavefront and then the cache — the two new result paths. *)
  Dpm_cache.Solve_cache.with_capacity 16 @@ fun () ->
  let sys = Paper_instance.system () in
  let weights = List.map (fun (w, _, _, _, _) -> w) pins in
  let check_sweep sols =
    List.iter2
      (fun (weight, gain, _, _, actions) (s : Optimize.solution) ->
        Test_util.check_close ~tol:1e-9
          (Printf.sprintf "sweep gain at w=%g" weight)
          gain s.Optimize.gain;
        if s.Optimize.actions <> actions then
          Alcotest.failf "sweep policy drifted at w=%g" weight)
      pins sols
  in
  check_sweep (Optimize.sweep sys ~weights);
  (* Second pass: served from the cache. *)
  check_sweep (Optimize.sweep sys ~weights);
  if not (Dpm_cache.Solve_cache.hit_ratio () > 0.0) then
    Alcotest.fail "second sweep did not hit the cache"

let implicit_path_matches_pins () =
  (* The opt-in implicit (matrix-free) evaluation backend must land on
     the same optima: gains within 1e-6 of the pins (the backend's
     cross-check budget — it solves by sweeps, not factorization) and
     the exact pinned policies. *)
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  let sys = Paper_instance.system () in
  List.iter
    (fun (weight, gain, _, _, actions) ->
      let s =
        Optimize.solve ~weight ~eval:Dpm_ctmdp.Policy_iteration.Implicit sys
      in
      Test_util.check_close ~tol:1e-6
        (Printf.sprintf "implicit gain at w=%g" weight)
        gain s.Optimize.gain;
      if s.Optimize.actions <> actions then
        Alcotest.failf "implicit policy drifted at w=%g" weight)
    pins

let suite =
  [
    Alcotest.test_case "paper-instance gains and policies" `Quick
      paper_instance_pins;
    Alcotest.test_case "warm/cached paths reproduce the pins" `Quick
      warm_path_matches_pins;
    Alcotest.test_case "implicit eval path reproduces the pins" `Quick
      implicit_path_matches_pins;
  ]
