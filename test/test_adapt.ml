(* Dpm_adapt: arrival-rate estimation, non-stationary workloads, the
   online-adaptive controller, and its solver-failure fallback.

   The determinism tests mirror the Dpm_par/Dpm_cache contracts: the
   adaptive controller re-solves through the shared solve cache, so
   bit-identical results at any domain count lean on warm == cold
   (pinned in test_cache.ml) and on every replication owning its own
   estimator and policy state. *)

open Dpm_core
open Dpm_sim
module Estimator = Dpm_adapt.Estimator
module Adaptive = Dpm_adapt.Adaptive
module Harness = Dpm_adapt.Harness

let t = Alcotest.test_case

(* --- estimator ------------------------------------------------------ *)

(* Feed exponential gaps at a known rate; both estimators must land on
   it and cover it with their band. *)
let estimator_converges_stationary () =
  let rate = 0.25 in
  let feed est n =
    let rng = Dpm_prob.Rng.create 42L in
    let now = ref 0.0 in
    for _ = 1 to n do
      now := !now +. Dpm_prob.Dist.exponential_sample rng ~rate;
      Estimator.observe_arrival est ~now:!now
    done
  in
  List.iter
    (fun (name, est) ->
      feed est 400;
      (match Estimator.rate est with
      | None -> Alcotest.failf "%s: no estimate after 400 arrivals" name
      | Some r ->
          Test_util.check_relative ~rel:0.25 (name ^ ": rate estimate") rate r);
      match Estimator.band est with
      | None -> Alcotest.failf "%s: no band" name
      | Some (lo, hi) ->
          Alcotest.(check bool)
            (name ^ ": band ordered and covers truth")
            true
            (lo <= hi && lo <= rate && rate <= hi))
    [
      ("window", Estimator.sliding_window ~window:100 ());
      ("ewma", Estimator.ewma ~alpha:0.05 ());
    ]

let estimator_band_excludes_drifted_rate () =
  (* After a 4x rate jump the old rate must leave the band quickly —
     this is the adaptation trigger. *)
  let est = Estimator.sliding_window ~window:50 () in
  let rng = Dpm_prob.Rng.create 7L in
  let now = ref 0.0 in
  let feed rate n =
    for _ = 1 to n do
      now := !now +. Dpm_prob.Dist.exponential_sample rng ~rate;
      Estimator.observe_arrival est ~now:!now
    done
  in
  feed 0.1 100;
  feed 0.4 80;
  match Estimator.band est with
  | None -> Alcotest.fail "no band"
  | Some (lo, _hi) ->
      Alcotest.(check bool) "old rate below the band" true (0.1 < lo)

let estimator_ignores_degenerate_gaps () =
  let est = Estimator.sliding_window ~window:10 () in
  Estimator.observe_arrival est ~now:1.0;
  Estimator.observe_arrival est ~now:1.0;
  (* zero gap: dropped *)
  Estimator.observe_gap est nan;
  Estimator.observe_gap est (-3.0);
  Alcotest.(check int) "degenerate gaps dropped" 0 (Estimator.observations est);
  Estimator.observe_gap est 2.0;
  Alcotest.(check int) "good gap kept" 1 (Estimator.observations est)

(* --- non-stationary workloads --------------------------------------- *)

(* The MMPP marginal rate is the phase-mix average: with symmetric
   switching the mix is 1/2-1/2, so lambda-bar = (r1 + r2) / 2.  Count
   arrivals over a long horizon and check the empirical rate. *)
let mmpp_marginal_rate () =
  let r1 = 0.05 and r2 = 0.45 in
  let w = Workload.mmpp ~rates:[| r1; r2 |]
      ~switch_rate:[| [| 0.0; 0.01 |]; [| 0.01; 0.0 |] |]
  in
  let rng = Dpm_prob.Rng.create 11L in
  let horizon = 200_000.0 in
  let rec count now n =
    match Workload.next_arrival w rng ~now with
    | Some at when at <= horizon -> count at (n + 1)
    | Some _ | None -> n
  in
  let n = count 0.0 0 in
  let empirical = float_of_int n /. horizon in
  let expected = (r1 +. r2) /. 2.0 in
  (* ~50k arrivals but the 0.01 modulator gives few phase cycles; a
     5% tolerance keeps the check sharp without flakiness. *)
  Test_util.check_relative ~rel:0.05 "MMPP marginal rate" expected empirical

let trace_roundtrip_files () =
  let write lines =
    let path = Filename.temp_file "dpm_trace" ".txt" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  let drain w =
    let rng = Dpm_prob.Rng.create 1L in
    let rec go now acc =
      match Workload.next_arrival w rng ~now with
      | Some at -> go at (at :: acc)
      | None -> List.rev acc
    in
    go 0.0 []
  in
  let abs_path = write [ "# demo trace"; "1.5"; "3.0"; ""; "7.25" ] in
  (match Workload.load_trace abs_path with
  | Error e -> Alcotest.failf "absolute trace: %s" e
  | Ok w ->
      Alcotest.(check (list (float 1e-12)))
        "absolute times replayed" [ 1.5; 3.0; 7.25 ] (drain w));
  let gaps_path = write [ "1.5"; "1.5"; "4.25" ] in
  (match Workload.load_trace ~intervals:true gaps_path with
  | Error e -> Alcotest.failf "interval trace: %s" e
  | Ok w ->
      Alcotest.(check (list (float 1e-12)))
        "gaps accumulated" [ 1.5; 3.0; 7.25 ] (drain w));
  let bad_path = write [ "1.0"; "oops" ] in
  (match Workload.load_trace bad_path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unparsable line accepted");
  (match Workload.load_trace "/nonexistent/dpm_trace.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted");
  Sys.remove abs_path;
  Sys.remove gaps_path;
  Sys.remove bad_path

let spec_parsing () =
  (match Workload.segments_of_spec "0.083@4000,0.333@8000,0.125" with
  | Ok (segments, final_rate) ->
      Alcotest.(check (list (pair (float 1e-12) (float 1e-12))))
        "segments" [ (4000.0, 0.083); (8000.0, 0.333) ] segments;
      Test_util.check_close "final rate" 0.125 final_rate
  | Error e -> Alcotest.failf "segments_of_spec: %s" e);
  List.iter
    (fun spec ->
      match Workload.segments_of_spec spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad spec %S" spec)
    [ ""; "0.1@100"; "0.1@100,0.2@50,0.3"; "x@1,0.2"; "0.1@-5,0.2"; "-1" ];
  List.iter
    (fun spec ->
      match Workload.of_spec ~rate:0.2 spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "of_spec %S: %s" spec e)
    [ "poisson"; "piecewise:0.1@50,0.3"; "mmpp:0.1:0.4:0.02" ];
  List.iter
    (fun spec ->
      match Workload.of_spec ~rate:0.2 spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "of_spec accepted %S" spec)
    [ "nonsense"; "mmpp:0.1:0.4"; "piecewise:"; "trace-file:/nonexistent/x" ]

(* --- per-segment accounting ----------------------------------------- *)

let segments_sum_to_global () =
  let sys = Paper_instance.system () in
  let boundaries = [ 500.0; 1500.0 ] in
  let r =
    Power_sim.run ~seed:3L ~segments:boundaries ~sys
      ~workload:
        (Workload.piecewise ~segments:[ (500.0, 0.08); (1500.0, 0.3) ]
           ~final_rate:0.125)
      ~controller:(Controller.greedy sys)
      ~stop:(Power_sim.Sim_time 2500.0) ()
  in
  Alcotest.(check int) "segment count" 3 (Array.length r.Power_sim.segments);
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 r.Power_sim.segments in
  Alcotest.(check int) "generated" r.Power_sim.generated
    (sum (fun s -> s.Power_sim.seg_generated));
  Alcotest.(check int) "lost" r.Power_sim.lost
    (sum (fun s -> s.Power_sim.seg_lost));
  Alcotest.(check int) "completed" r.Power_sim.completed
    (sum (fun s -> s.Power_sim.seg_completed));
  Alcotest.(check int) "switches" r.Power_sim.switch_count
    (sum (fun s -> s.Power_sim.seg_switches));
  let weighted f =
    Array.fold_left
      (fun acc s ->
        acc +. (f s *. (s.Power_sim.seg_end -. s.Power_sim.seg_start)))
      0.0 r.Power_sim.segments
    /. r.Power_sim.duration
  in
  Test_util.check_relative ~rel:1e-9 "power is the duration-weighted mix"
    r.Power_sim.avg_power
    (weighted (fun s -> s.Power_sim.seg_power));
  Test_util.check_relative ~rel:1e-9 "queue average likewise"
    r.Power_sim.avg_waiting_requests
    (weighted (fun s -> s.Power_sim.seg_waiting_requests))

let segment_summaries () =
  let sys = Paper_instance.system () in
  let rs =
    Power_sim.replicate ~seed:5L ~n:3 ~segments:[ 400.0; 800.0 ] ~sys
      ~workload:(fun () -> Workload.poisson ~rate:(Sys_model.arrival_rate sys))
      ~controller:(fun () -> Controller.greedy sys)
      ~stop:(Power_sim.Sim_time 1200.0) ()
  in
  let per_seg = Summary.of_segment_results rs in
  Alcotest.(check int) "one summary per segment" 3 (Array.length per_seg);
  Array.iter
    (fun (s : Summary.t) ->
      Alcotest.(check int) "3 replications" 3 s.Summary.power.Summary.n)
    per_seg;
  Test_util.check_raises_invalid "empty list rejected" (fun () ->
      Summary.of_segment_results []);
  let bare =
    Power_sim.run ~seed:5L ~sys
      ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate sys))
      ~controller:(Controller.greedy sys)
      ~stop:(Power_sim.Sim_time 100.0) ()
  in
  Test_util.check_raises_invalid "segment-free results rejected" (fun () ->
      Summary.of_segment_results [ bare ])

(* --- adaptive controller --------------------------------------------- *)

let drifting_workload () =
  Workload.piecewise ~segments:[ (800.0, 1.0 /. 12.0); (1600.0, 1.0 /. 3.0) ]
    ~final_rate:0.125

let adaptive_replicate ~domains =
  let sys = Paper_instance.system () in
  Power_sim.replicate ~seed:21L ~n:4 ~domains ~sys
    ~workload:(fun () -> drifting_workload ())
    ~controller:(fun () ->
      Adaptive.controller
        (Adaptive.create ~weight:1.0 ~min_observations:20 ~cooldown:100.0 sys))
    ~stop:(Power_sim.Sim_time 2400.0) ()

let adaptive_bit_identical_across_domains () =
  let r1 = adaptive_replicate ~domains:1 in
  let r2 = adaptive_replicate ~domains:2 in
  let r4 = adaptive_replicate ~domains:4 in
  Alcotest.(check bool) "1 vs 2 domains" true (r1 = r2);
  Alcotest.(check bool) "1 vs 4 domains" true (r1 = r4)

let adaptive_actually_adapts () =
  let sys = Paper_instance.system () in
  let pm = Adaptive.create ~weight:1.0 ~min_observations:20 ~cooldown:100.0 sys in
  let initial = Adaptive.deployed_actions pm in
  let _ =
    Power_sim.run ~seed:21L ~sys ~workload:(drifting_workload ())
      ~controller:(Adaptive.controller pm)
      ~stop:(Power_sim.Sim_time 2400.0) ()
  in
  let st = Adaptive.stats pm in
  Alcotest.(check bool) "re-solved at least once" true (st.Adaptive.resolves > 0);
  Alcotest.(check bool) "switched policy" true (st.Adaptive.policy_switches > 0);
  Alcotest.(check bool) "deployed rate moved" true
    (st.Adaptive.deployed_rate <> Sys_model.arrival_rate sys);
  Alcotest.(check bool) "policy table changed" true
    (Adaptive.deployed_actions pm <> initial
    || st.Adaptive.deployed_rate <> Sys_model.arrival_rate sys)

(* Under an injected solver stall and a tiny re-solve deadline, every
   adaptation attempt must fail typed-ly and keep the incumbent; the
   simulation itself must finish normally.  The cache is scoped to
   capacity 0 because a cache hit would bypass the guarded solve. *)
let solver_failure_keeps_incumbent () =
  Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
  Unix.putenv "DPM_FAULTS" "stall";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "DPM_FAULTS" "")
    (fun () ->
      let sys = Paper_instance.system () in
      let pm =
        Adaptive.create ~weight:1.0 ~min_observations:20 ~cooldown:100.0
          ~deadline_s:1e-6 sys
      in
      let incumbent = Adaptive.deployed_actions pm in
      let r =
        Power_sim.run ~seed:21L ~sys ~workload:(drifting_workload ())
          ~controller:(Adaptive.controller pm)
          ~stop:(Power_sim.Sim_time 2400.0) ()
      in
      let st = Adaptive.stats pm in
      Alcotest.(check bool) "attempts were made" true (st.Adaptive.resolves > 0);
      Alcotest.(check int) "every attempt failed" st.Adaptive.resolves
        st.Adaptive.resolve_failures;
      Alcotest.(check int) "no policy switch" 0 st.Adaptive.policy_switches;
      Test_util.check_close "deployed rate unchanged"
        (Sys_model.arrival_rate sys) st.Adaptive.deployed_rate;
      Alcotest.(check bool) "incumbent policy kept" true
        (Adaptive.deployed_actions pm = incumbent);
      Alcotest.(check bool) "simulation completed" true
        (r.Power_sim.duration = 2400.0))

let quantize_log_grid () =
  Test_util.check_close ~tol:1e-12 "fixed point on the grid" 1.0
    (Adaptive.quantize_log 1.0);
  Test_util.check_relative ~rel:0.07 "stays within one grid step" 0.2
    (Adaptive.quantize_log 0.2);
  (* Nearby estimates collapse to the same grid point — the property
     that makes the solve cache effective under estimate jitter. *)
  Alcotest.(check (float 0.0)) "jitter collapses"
    (Adaptive.quantize_log 0.2001) (Adaptive.quantize_log 0.2002);
  Test_util.check_raises_invalid "rejects non-positive" (fun () ->
      Adaptive.quantize_log 0.0)

(* --- harness ---------------------------------------------------------- *)

let harness_smoke () =
  let sys = Paper_instance.system () in
  let c =
    Harness.compare ~seed:9L ~weight:1.0 ~min_observations:20 ~cooldown:100.0
      ~sys
      ~segments:[ (800.0, 1.0 /. 12.0); (1600.0, 1.0 /. 3.0) ]
      ~final_rate:0.125 ~horizon:2400.0 ()
  in
  Alcotest.(check bool) "adaptive entry labelled" true
    (c.Harness.adaptive.Harness.label = "adaptive");
  Alcotest.(check bool) "oracle is cheapest-or-equal vs adaptive" true
    (c.Harness.oracle.Harness.cost
    <= c.Harness.adaptive.Harness.cost +. 1e-9
    || c.Harness.adaptive.Harness.cost < c.Harness.static_best.Harness.cost);
  Alcotest.(check bool) "static_best is a static entry" true
    (String.length c.Harness.static_best.Harness.label >= 6
    && String.sub c.Harness.static_best.Harness.label 0 6 = "static");
  (* Every entry simulated the same arrival process: same generated
     count under common random numbers. *)
  (match c.Harness.entries with
  | first :: rest ->
      List.iter
        (fun (e : Harness.entry) ->
          Alcotest.(check int)
            ("generated matches for " ^ e.Harness.label)
            first.Harness.result.Power_sim.generated
            e.Harness.result.Power_sim.generated)
        rest
  | [] -> Alcotest.fail "no entries");
  List.iter
    (fun (e : Harness.entry) ->
      Alcotest.(check int)
        ("per-segment metrics attached to " ^ e.Harness.label)
        3
        (Array.length e.Harness.result.Power_sim.segments))
    c.Harness.entries

let suite =
  [
    t "estimators converge on a stationary stream" `Quick
      estimator_converges_stationary;
    t "band excludes a drifted-away rate" `Quick
      estimator_band_excludes_drifted_rate;
    t "degenerate gaps are ignored" `Quick estimator_ignores_degenerate_gaps;
    t "MMPP marginal rate matches the phase mix" `Slow mmpp_marginal_rate;
    t "trace files round-trip (absolute and intervals)" `Quick
      trace_roundtrip_files;
    t "workload spec grammar" `Quick spec_parsing;
    t "per-segment metrics sum back to the global result" `Quick
      segments_sum_to_global;
    t "per-segment replication summaries" `Quick segment_summaries;
    t "adaptive results bit-identical at 1/2/4 domains" `Slow
      adaptive_bit_identical_across_domains;
    t "adaptive controller re-solves and switches policy" `Quick
      adaptive_actually_adapts;
    t "solver failure keeps the incumbent policy" `Quick
      solver_failure_keeps_incumbent;
    t "log-grid quantization" `Quick quantize_log_grid;
    t "harness compares on common random numbers" `Slow harness_smoke;
  ]
