(* Dpm_par pool semantics and the parallel paths built on it:
   determinism across domain counts, sparse-vs-dense policy
   evaluation agreement, and pool edge cases. *)

open Dpm_core
open Dpm_sim

let t = Alcotest.test_case

(* --- pool combinators ---------------------------------------------- *)

let map_empty () =
  Alcotest.(check (array int)) "empty array" [||]
    (Dpm_par.parallel_map ~domains:4 (fun x -> x + 1) [||]);
  Alcotest.(check (list int)) "empty list" []
    (Dpm_par.parallel_map_list ~domains:4 (fun x -> x + 1) [])

let map_orders_results () =
  let input = Array.init 257 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) input in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "squares, %d domains" d)
        expected
        (Dpm_par.parallel_map ~domains:d (fun i -> (i * i) + 1) input))
    [ 1; 2; 3; 8 ]

let size_one_pool_is_sequential () =
  (* domains:1 must not touch the pool at all: results computed on the
     calling domain, in order. *)
  let order = ref [] in
  Dpm_par.parallel_for ~domains:1 5 (fun i -> order := i :: !order);
  Alcotest.(check (list int)) "in-order execution" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

let exception_propagates () =
  let boom i = if i >= 100 then failwith (string_of_int i) else i in
  List.iter
    (fun d ->
      match
        Dpm_par.parallel_map ~domains:d boom (Array.init 300 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          (* The lowest failing index wins, regardless of which domain
             hit its failure first. *)
          Alcotest.(check string)
            (Printf.sprintf "lowest index, %d domains" d)
            "100" msg)
    [ 1; 2; 4 ]

let reduce_is_chunk_deterministic () =
  (* Float addition is not associative, so this only passes because
     the chunk layout (and thus the combine tree) is a function of n
     alone, never of the domain count. *)
  let n = 1023 in
  let map i = 1.0 /. float_of_int (i + 1) in
  let sum d =
    Dpm_par.parallel_reduce ~domains:d ~n ~map ~combine:( +. ) ~init:0.0 ()
  in
  let reference = sum 1 in
  List.iter
    (fun d ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "bitwise-equal sum, %d domains" d)
        reference (sum d))
    [ 2; 3; 4; 7 ]

let nested_calls_degrade () =
  (* A parallel call from inside a worker must not deadlock; it runs
     sequentially on that worker. *)
  let outer =
    Dpm_par.parallel_map ~domains:4
      (fun i ->
        Dpm_par.parallel_reduce ~domains:4 ~n:10
          ~map:(fun j -> i + j)
          ~combine:( + ) ~init:0 ())
      (Array.init 8 (fun i -> i))
  in
  Alcotest.(check (array int)) "nested results"
    (Array.init 8 (fun i -> (10 * i) + 45))
    outer

(* --- seed streams --------------------------------------------------- *)

let seed_stream_properties () =
  let s = Dpm_prob.Rng.seed_stream ~base:42L 8 in
  Alcotest.(check int) "length" 8 (List.length s);
  Alcotest.(check bool) "deterministic" true
    (s = Dpm_prob.Rng.seed_stream ~base:42L 8);
  Alcotest.(check bool) "prefix property" true
    (Dpm_prob.Rng.seed_stream ~base:42L 3
    = (s |> List.filteri (fun i _ -> i < 3)));
  Alcotest.(check int) "all distinct" 8
    (List.length (List.sort_uniq compare s));
  Alcotest.(check bool) "base matters" true
    (s <> Dpm_prob.Rng.seed_stream ~base:43L 8);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Rng.seed_stream: negative count") (fun () ->
      ignore (Dpm_prob.Rng.seed_stream ~base:1L (-1)))

(* --- replicate determinism across domain counts ---------------------- *)

let replicate ~domains ?seeds ?n ?seed sys =
  Power_sim.replicate ?seeds ?n ?seed ~domains ~sys
    ~workload:(fun () -> Workload.poisson ~rate:(Sys_model.arrival_rate sys))
    ~controller:(fun () -> Controller.greedy sys)
    ~stop:(Power_sim.Requests 2_000) ()

let replicate_deterministic () =
  let sys = Paper_instance.system () in
  let reference = replicate ~domains:1 ~n:6 ~seed:5L sys in
  Alcotest.(check int) "n replications" 6 (List.length reference);
  List.iter
    (fun d ->
      let rs = replicate ~domains:d ~n:6 ~seed:5L sys in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical results, %d domains" d)
        true (rs = reference);
      let s = Summary.of_results rs and s0 = Summary.of_results reference in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical summary, %d domains" d)
        true (s = s0))
    [ 2; 4 ]

let replicate_seed_handling () =
  let sys = Paper_instance.system () in
  (* Default is five splitmix-derived seeds from the base seed. *)
  let default = replicate ~domains:1 sys in
  let explicit =
    replicate ~domains:1 ~seeds:(Dpm_prob.Rng.seed_stream ~base:1L 5) sys
  in
  Alcotest.(check bool) "default = splitmix stream of seed 1" true
    (default = explicit);
  Alcotest.check_raises "empty seed list"
    (Invalid_argument "Power_sim.replicate: empty seed list") (fun () ->
      ignore (replicate ~domains:1 ~seeds:[] sys));
  Alcotest.check_raises "contradictory n"
    (Invalid_argument
       "Power_sim.replicate: ~n:3 contradicts the 2 explicit seeds") (fun () ->
      ignore (replicate ~domains:1 ~seeds:[ 1L; 2L ] ~n:3 sys))

(* --- sweeps are domain-count invariant ------------------------------- *)

let sweep_deterministic () =
  let sys = Paper_instance.system () in
  let weights = [ 0.1; 0.5; 1.0; 2.0; 5.0; 10.0 ] in
  (* Solutions are compared modulo provenance: wall clock and cache
     origin legitimately vary with the domain count. *)
  let sweep d =
    List.map Test_util.strip_provenance (Optimize.sweep ~domains:d sys ~weights)
  in
  let reference = sweep 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "identical solutions, %d domains" d)
        true
        (sweep d = reference))
    [ 2; 4 ];
  let sol = List.nth reference 2 in
  let rates = List.init 8 (fun k -> 0.1 +. (0.02 *. float_of_int k)) in
  let sweep d =
    Sensitivity.rate_sweep ~domains:d sys ~actions:sol.Optimize.actions
      ~weight:1.0 ~rates
  in
  let r1 = sweep 1 in
  Alcotest.(check bool) "rate sweep identical under 3 domains" true
    (sweep 3 = r1)

(* --- sparse vs dense policy evaluation ------------------------------- *)

let eval_close label (a : Dpm_ctmdp.Policy_iteration.evaluation)
    (b : Dpm_ctmdp.Policy_iteration.evaluation) =
  Alcotest.(check bool)
    (label ^ ": gain within 1e-6")
    true
    (Float.abs (a.Dpm_ctmdp.Policy_iteration.gain
                -. b.Dpm_ctmdp.Policy_iteration.gain)
    < 1e-6);
  Alcotest.(check bool)
    (label ^ ": bias within 1e-6")
    true
    (Dpm_linalg.Vec.approx_equal ~tol:1e-6 a.Dpm_ctmdp.Policy_iteration.bias
       b.Dpm_ctmdp.Policy_iteration.bias)

let sparse_matches_dense () =
  let sys = Paper_instance.system () in
  let m = Sys_model.to_ctmdp sys ~weight:1.0 in
  let policies =
    [
      ("first-choice", Dpm_ctmdp.Policy.uniform_first m);
      ( "greedy",
        Policies.to_ctmdp_policy sys m (Policies.greedy sys) );
      ( "n-policy",
        Policies.to_ctmdp_policy sys m (Policies.n_policy sys ~n:2) );
      ("optimal", (Dpm_ctmdp.Policy_iteration.solve m).Dpm_ctmdp.Policy_iteration.policy);
    ]
  in
  List.iter
    (fun (name, p) ->
      eval_close name
        (Dpm_ctmdp.Policy_iteration.evaluate_sparse m p)
        (Dpm_ctmdp.Policy_iteration.evaluate_robust m p))
    policies

let solve_paths_agree () =
  (* The full optimization must land on the same policy and gain
     whichever evaluation backend drives it — on the paper instance
     and on a larger composed space where Auto picks sparse. *)
  List.iter
    (fun q ->
      let sys =
        Sys_model.create
          ~sp:(Paper_instance.service_provider ())
          ~queue_capacity:q ~arrival_rate:(1.0 /. 6.0) ()
      in
      let m = Sys_model.to_ctmdp sys ~weight:1.0 in
      let dense = Dpm_ctmdp.Policy_iteration.solve ~eval:Dense m in
      let sparse = Dpm_ctmdp.Policy_iteration.solve ~eval:Sparse m in
      let auto = Dpm_ctmdp.Policy_iteration.solve ~eval:Auto m in
      let implicit = Dpm_ctmdp.Policy_iteration.solve ~eval:Implicit m in
      Alcotest.(check bool)
        (Printf.sprintf "gain agrees (Q=%d)" q)
        true
        (Float.abs
           (dense.Dpm_ctmdp.Policy_iteration.gain
           -. sparse.Dpm_ctmdp.Policy_iteration.gain)
        < 1e-6
        && Float.abs
             (dense.Dpm_ctmdp.Policy_iteration.gain
             -. auto.Dpm_ctmdp.Policy_iteration.gain)
           < 1e-6
        && Float.abs
             (dense.Dpm_ctmdp.Policy_iteration.gain
             -. implicit.Dpm_ctmdp.Policy_iteration.gain)
           < 1e-6);
      Alcotest.(check bool)
        (Printf.sprintf "policy agrees (Q=%d)" q)
        true
        (Dpm_ctmdp.Policy.actions m dense.Dpm_ctmdp.Policy_iteration.policy
        = Dpm_ctmdp.Policy.actions m sparse.Dpm_ctmdp.Policy_iteration.policy
        && Dpm_ctmdp.Policy.actions m sparse.Dpm_ctmdp.Policy_iteration.policy
           = Dpm_ctmdp.Policy.actions m
               implicit.Dpm_ctmdp.Policy_iteration.policy))
    [ 5; 40 ]

let implicit_domains_bit_identical () =
  (* Implicit-path solves fanned out over a domain pool must be
     bit-identical to the sequential run — the Dpm_par determinism
     contract extended to the new evaluation backend.  Cache capacity
     0 so every domain count really solves. *)
  let sys = Paper_instance.system () in
  let weights = [| 0.1; 0.5; 1.0; 2.0; 5.0; 10.0 |] in
  let run d =
    Dpm_cache.Solve_cache.with_capacity 0 @@ fun () ->
    Array.map Test_util.strip_provenance
      (Dpm_par.parallel_map ~domains:d
         (fun weight ->
           Optimize.solve ~weight ~eval:Dpm_ctmdp.Policy_iteration.Implicit sys)
         weights)
  in
  let reference = run 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical implicit solutions, %d domains" d)
        true
        (run d = reference))
    [ 2; 4 ]

let suite =
  [
    t "parallel_map of empty input" `Quick map_empty;
    t "parallel_map preserves order at any domain count" `Quick
      map_orders_results;
    t "domains=1 runs sequentially in order" `Quick size_one_pool_is_sequential;
    t "task exception propagates (lowest index)" `Quick exception_propagates;
    t "parallel_reduce is bitwise domain-count invariant" `Quick
      reduce_is_chunk_deterministic;
    t "nested parallel calls degrade gracefully" `Quick nested_calls_degrade;
    t "seed_stream is a deterministic prefix-stable stream" `Quick
      seed_stream_properties;
    t "replicate: identical results under 1/2/4 domains" `Quick
      replicate_deterministic;
    t "replicate: ?n / ?seeds semantics" `Quick replicate_seed_handling;
    t "optimize and rate sweeps are domain-count invariant" `Quick
      sweep_deterministic;
    t "sparse evaluation matches dense LU within 1e-6" `Quick
      sparse_matches_dense;
    t "solve agrees across eval backends" `Quick solve_paths_agree;
    t "implicit solves: identical results under 1/2/4 domains" `Quick
      implicit_domains_bit_identical;
  ]
