(* Lazy linear operators: leaves, combinators, kernels, and the
   implicit SYS generator against its materialized references. *)

open Dpm_linalg
open Dpm_core

let check_dense_equal ?(tol = 1e-12) msg expected actual =
  Alcotest.(check bool) msg true (Matrix.approx_equal ~tol expected actual)

(* A small fixed dense block with zeros, negatives, and repeats-free
   structure. *)
let m23 = Matrix.of_arrays [| [| 1.0; 0.0; -2.0 |]; [| 0.0; 3.5; 0.0 |] |]
let m32 = Matrix.of_arrays [| [| 2.0; 0.0 |]; [| -1.0; 1.0 |]; [| 0.0; 4.0 |] |]
let sq2 = Matrix.of_arrays [| [| -1.0; 1.0 |]; [| 2.0; -2.0 |] |]
let sq3 =
  Matrix.of_arrays
    [| [| -3.0; 2.0; 1.0 |]; [| 0.0; -1.0; 1.0 |]; [| 4.0; 0.0; -4.0 |] |]

let leaves_round_trip () =
  check_dense_equal "dense leaf" m23 (Operator.to_dense (Operator.dense m23));
  check_dense_equal "csr leaf" m23
    (Operator.to_dense (Operator.csr (Sparse.of_dense m23)));
  let d = [| 1.0; 0.0; -2.5 |] in
  let expected = Matrix.init 3 3 (fun i j -> if i = j then d.(i) else 0.0) in
  check_dense_equal "diag leaf" expected (Operator.to_dense (Operator.diag d));
  check_dense_equal "identity" (Matrix.identity 4)
    (Operator.to_dense (Operator.identity 4));
  Alcotest.(check int) "rows" 2 (Operator.rows (Operator.dense m23));
  Alcotest.(check int) "cols" 3 (Operator.cols (Operator.dense m23))

let combinators_match_dense () =
  let a = Operator.dense m23 and b = Operator.dense m32 in
  check_dense_equal "kron_prod" (Tensor.product m23 m32)
    (Operator.to_dense (Operator.kron_prod a b));
  check_dense_equal "kron_sum" (Tensor.sum sq2 sq3)
    (Operator.to_dense
       (Operator.kron_sum (Operator.dense sq2) (Operator.dense sq3)));
  check_dense_equal "scaled" (Matrix.scale (-0.5) m23)
    (Operator.to_dense (Operator.scaled (-0.5) a));
  let shifted_expected =
    Matrix.add sq3 (Matrix.scale 2.0 (Matrix.identity 3))
  in
  check_dense_equal "shifted" shifted_expected
    (Operator.to_dense (Operator.shifted (Operator.dense sq3) 2.0));
  check_dense_equal "sum" (Matrix.add m23 m23)
    (Operator.to_dense (Operator.sum a a));
  Alcotest.check_raises "sum shape mismatch"
    (Invalid_argument "Operator.sum: shape mismatch (2x3 vs 3x2)") (fun () ->
      ignore (Operator.sum a b));
  Alcotest.check_raises "kron_sum not square"
    (Invalid_argument "Operator.kron_sum: operator is not square") (fun () ->
      ignore (Operator.kron_sum a a))

let blocks_and_transpose () =
  (* [ sq2 | 0 ; m23' | sq3 ] with m23' a 3x2 coupling block. *)
  let grid =
    Operator.blocks ~row_dims:[| 2; 3 |] ~col_dims:[| 2; 3 |]
      [|
        [| Some (Operator.dense sq2); None |];
        [| Some (Operator.dense m32); Some (Operator.dense sq3) |];
      |]
  in
  let expected = Matrix.create 5 5 in
  for i = 0 to 1 do
    for j = 0 to 1 do
      Matrix.set expected i j (Matrix.get sq2 i j)
    done
  done;
  for i = 0 to 2 do
    for j = 0 to 1 do
      Matrix.set expected (2 + i) j (Matrix.get m32 i j)
    done;
    for j = 0 to 2 do
      Matrix.set expected (2 + i) (2 + j) (Matrix.get sq3 i j)
    done
  done;
  check_dense_equal "blocks" expected (Operator.to_dense grid);
  (* Structural transpose of every combinator at once. *)
  let op =
    Operator.sum
      (Operator.scaled 0.5 grid)
      (Operator.shifted
         (Operator.kron_sum (Operator.dense (Matrix.identity 1)) grid)
         (-1.0))
  in
  check_dense_equal "transpose"
    (Matrix.transpose (Operator.to_dense op))
    (Operator.to_dense (Operator.transpose op));
  Alcotest.check_raises "of_rows not transposable"
    (Invalid_argument
       "Operator.transpose: of_rows leaves carry no column structure")
    (fun () ->
      ignore
        (Operator.transpose (Operator.of_rows ~rows:1 ~cols:1 (fun _ _ -> ()))))

let matvec_and_get () =
  let op =
    Operator.kron_sum (Operator.dense sq2) (Operator.dense sq3)
  in
  let n = Operator.rows op in
  let x = Vec.init n (fun i -> float_of_int (i + 1) /. 3.0) in
  let expected = Matrix.mul_vec (Operator.to_dense op) x in
  let bx = Bvec.of_vec x and dst = Bvec.create n in
  Operator.matvec op bx ~dst;
  Alcotest.(check bool) "matvec" true
    (Vec.approx_equal ~tol:1e-12 expected (Bvec.to_vec dst));
  (* [get] accumulates repeated diagonal contributions. *)
  let dense = Operator.to_dense op in
  for i = 0 to n - 1 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "get (%d,%d)" i i)
      (Matrix.get dense i i) (Operator.get op i i)
  done;
  let d = Operator.diagonal op in
  for i = 0 to n - 1 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "diagonal %d" i)
      (Matrix.get dense i i) d.(i)
  done

let storage_accounting () =
  let a = Operator.csr (Sparse.of_dense sq3) in
  (* 7 nonzeros in sq3. *)
  Alcotest.(check int) "csr stored" 7 (Operator.stored_floats a);
  let kp = Operator.kron_prod a a in
  Alcotest.(check int) "kron stored = factor sum" 14 (Operator.stored_floats kp);
  Alcotest.(check int) "kron materialized = nnz product" 49
    (Operator.materialized_nnz kp);
  Alcotest.(check int) "expansion agrees" 49 (Sparse.nnz (Operator.to_sparse kp));
  let ks = Operator.kron_sum a a in
  Alcotest.(check int) "kron_sum materialized bound" (21 + 21)
    (Operator.materialized_nnz ks);
  Alcotest.(check bool) "bound dominates expansion" true
    (Sparse.nnz (Operator.to_sparse ks) <= Operator.materialized_nnz ks)

let gauss_seidel_matches_iterative () =
  (* Diagonally dominant system solved both ways. *)
  let a =
    Matrix.of_arrays
      [|
        [| 4.0; -1.0; 0.0; -1.0 |];
        [| -1.0; 5.0; -2.0; 0.0 |];
        [| 0.0; -2.0; 6.0; -1.0 |];
        [| -1.0; 0.0; -1.0; 4.5 |];
      |]
  in
  let b = [| 1.0; -2.0; 3.0; 0.5 |] in
  let reference = Iterative.gauss_seidel (Sparse.of_dense a) b in
  let implicit = Operator.gauss_seidel (Operator.dense a) b in
  Alcotest.(check bool) "reference converged" true
    reference.Iterative.converged;
  Alcotest.(check bool) "implicit converged" true implicit.Iterative.converged;
  Alcotest.(check bool) "solutions agree" true
    (Vec.approx_equal ~tol:1e-8 reference.Iterative.solution
       implicit.Iterative.solution)

let steady_matches_iterative () =
  let sys = Paper_instance.system () in
  let action = Paper_instance.active in
  let g = Sys_model.generator_of_actions sys ~actions:(fun _ -> action) in
  let reference =
    Iterative.gauss_seidel_steady (Dpm_ctmc.Generator.to_sparse g)
  in
  let implicit = Operator.gauss_seidel_steady (Sys_model.operator sys ~action) in
  Alcotest.(check bool) "implicit converged" true implicit.Iterative.converged;
  Alcotest.(check bool) "stationary vectors agree" true
    (Vec.approx_equal ~tol:1e-9 reference.Iterative.solution
       implicit.Iterative.solution)

let sys_operator_matches_uniform_generator () =
  let sys = Paper_instance.system () in
  for action = 0 to 2 do
    let expected = Sys_model.uniform_generator sys ~action in
    let actual = Operator.to_dense (Sys_model.operator sys ~action) in
    check_dense_equal
      (Printf.sprintf "SYS operator, action %d" action)
      expected actual
  done;
  (* The lazy form must store far fewer floats than the expansion has
     nonzeros on a deep queue. *)
  let sys = Paper_instance.system_at ~arrival_rate:Paper_instance.arrival_rate in
  let op = Sys_model.operator sys ~action:0 in
  Alcotest.(check bool) "implicit storage below expanded nnz" true
    (Operator.stored_floats op < Operator.materialized_nnz op)

let suite =
  [
    Alcotest.test_case "leaves round-trip" `Quick leaves_round_trip;
    Alcotest.test_case "combinators match dense" `Quick combinators_match_dense;
    Alcotest.test_case "blocks and transpose" `Quick blocks_and_transpose;
    Alcotest.test_case "matvec and get" `Quick matvec_and_get;
    Alcotest.test_case "storage accounting" `Quick storage_accounting;
    Alcotest.test_case "gauss_seidel matches Iterative" `Quick
      gauss_seidel_matches_iterative;
    Alcotest.test_case "steady state matches Iterative" `Quick
      steady_matches_iterative;
    Alcotest.test_case "SYS operator = uniform generator" `Quick
      sys_operator_matches_uniform_generator;
  ]
