(* Command-line interface to the CTMDP dynamic power management
   library.

     dpm_cli info        -- show a device preset
     dpm_cli check       -- validate a model (all findings, not just
                            the first); under DPM_FAULTS, a fault
                            drill that must be caught
     dpm_cli solve       -- optimize a policy for a weight
     dpm_cli sweep       -- trace the power/delay trade-off as CSV
     dpm_cli constrained -- minimum power under a delay bound
     dpm_cli simulate    -- event-driven simulation of a controller
     dpm_cli adapt       -- adaptive vs static vs oracle on a drifting
                            workload (online re-optimization)
     dpm_cli serve       -- supervised policy daemon: line protocol on
                            stdin/stdout, checkpoint/restore, degraded
                            modes (Dpm_serve)
     dpm_cli dot         -- DOT graphs of the SP / SQ / SYS chains
                            (regenerates Figures 1 and 2 of the paper)
     dpm_cli scenario    -- the scenario library: phase-type service,
                            K-queue polling, dynamic batching
                            (Dpm_scenario; see MODELING.md)

   Exit codes: 0 success; 1 generic failure (bad flags, unknown
   device, ...); 2 infeasible constrained problem; then one code per
   Dpm_robust.Error class: 3 deadline-exceeded, 4 singular,
   5 nonconvergent, 6 cycling, 7 invalid-model, 8 non-finite. *)

open Cmdliner
open Dpm_core

(* --- shared arguments ---------------------------------------------- *)

let device_arg =
  let doc = "Device preset: paper, disk, wlan, or cpu." in
  Arg.(value & opt string "paper" & info [ "device"; "d" ] ~docv:"NAME" ~doc)

let rate_arg =
  let doc = "Request arrival rate (requests per second)." in
  Arg.(value & opt float (1.0 /. 6.0) & info [ "rate"; "r" ] ~docv:"LAMBDA" ~doc)

let capacity_arg =
  let doc = "Queue capacity Q." in
  Arg.(value & opt int 5 & info [ "capacity"; "q" ] ~docv:"Q" ~doc)

let weight_arg =
  let doc = "Delay weight w in Cost = C_pow + w * C_sq (Eqn. 3.1)." in
  Arg.(value & opt float 1.0 & info [ "weight"; "w" ] ~docv:"W" ~doc)

let seed_arg =
  let doc = "Simulation seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let requests_arg =
  let doc = "Number of requests to simulate." in
  Arg.(value & opt int 50_000 & info [ "requests"; "n" ] ~docv:"N" ~doc)

(* Global parallelism knob: sizes the Dpm_par domain pool used by
   replicated simulation and the weight/rate sweep grids.  Results are
   bit-identical at any value; only wall clock changes. *)
let domains_arg =
  let doc =
    "Number of OCaml domains (worker threads) for parallel sections: \
     simulation replications and optimization sweeps.  Defaults to \
     $(b,DPM_DOMAINS) or 1 (sequential).  The output is identical \
     whatever the value; only wall-clock time changes."
  in
  Arg.(value & opt (some int) None & info [ "domains"; "j" ] ~docv:"D" ~doc)

let apply_domains = function
  | None -> ()
  | Some d when d >= 1 -> Dpm_par.set_default_domains d
  | Some d ->
      prerr_endline (Printf.sprintf "--domains must be >= 1, got %d" d);
      exit 1

(* Global cache knob: capacity of the Dpm_cache solver-result cache
   shared by every solve of the command (sweeps hit it on repeated or
   structurally identical grid points). *)
let cache_arg =
  let doc =
    "Capacity of the policy-iteration result cache, in entries.  Repeated \
     solves of a structurally identical model (same states, actions, rates, \
     costs) are served from the cache.  $(b,0) disables caching.  Defaults \
     to $(b,DPM_CACHE) or 512."
  in
  Arg.(value & opt (some int) None & info [ "cache" ] ~docv:"N" ~doc)

let apply_cache = function
  | None -> ()
  | Some c when c >= 0 -> Dpm_cache.Solve_cache.set_capacity c
  | Some c ->
      prerr_endline (Printf.sprintf "--cache must be >= 0, got %d" c);
      exit 1

(* Global observability flag: when given, a Dpm_obs registry is active
   for the whole command (solver iterations, LU factorizations,
   simulator event throughput, spans) and is rendered after the
   command's normal output. *)
let metrics_arg =
  let doc =
    "Collect runtime metrics (solver iterations, LU factorizations, \
     simulator event throughput, wall-clock spans) and print them after the \
     command's output.  $(docv) is table, json, or prometheus; bare \
     $(b,--metrics) means table."
  in
  Arg.(
    value
    & opt ~vopt:(Some "table") (some string) None
    & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let metrics_out_arg =
  let doc =
    "Also write the collected metrics to $(docv) (in the $(b,--metrics) \
     format, or json when $(b,--metrics) is absent).  Implies metrics \
     collection even without $(b,--metrics)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let render_of_format = function
  | "table" -> Dpm_obs.Report.to_table
  | "json" -> Dpm_obs.Report.to_json
  | "prometheus" | "prom" -> Dpm_obs.Report.to_prometheus
  | other ->
      prerr_endline
        (Printf.sprintf
           "unknown metrics format %S (try: table, json, prometheus)" other);
      exit 1

let with_metrics format out run =
  match (format, out) with
  | None, None -> run ()
  | _ ->
      (* Validate formats up front so a typo fails before the work. *)
      let stdout_render = Option.map render_of_format format in
      let file_render =
        render_of_format (Option.value format ~default:"json")
      in
      let registry = Dpm_obs.Metrics.create () in
      Fun.protect
        ~finally:(fun () ->
          Dpm_obs.Probe.set_active None;
          (match stdout_render with
          | Some render ->
              print_newline ();
              print_string (render registry)
          | None -> ());
          match out with
          | Some file ->
              let oc = open_out file in
              output_string oc (file_render registry);
              close_out oc
          | None -> ())
        (fun () ->
          Dpm_obs.Probe.set_active (Some registry);
          run ())

(* Global timeline tracing: when given, a Dpm_trace recorder is active
   for the whole command; at exit its events are written as Chrome
   trace-event JSON (open in Perfetto or chrome://tracing). *)
let trace_arg =
  let doc =
    "Record a structured event timeline (spans, cache hits, fault \
     injections, online re-solves with provenance) and write it to $(docv) \
     as Chrome trace-event JSON, loadable in Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_trace file run =
  match file with
  | None -> run ()
  | Some file ->
      let recorder = Dpm_trace.Recorder.create () in
      Fun.protect
        ~finally:(fun () ->
          Dpm_trace.Recorder.set_active None;
          let oc = open_out file in
          output_string oc (Dpm_trace.Chrome.to_json recorder);
          close_out oc)
        (fun () ->
          Dpm_trace.Recorder.set_active (Some recorder);
          run ())

(* Every command takes the runtime bundle (metrics, metrics file, trace
   file, domains, cache) through one term so the observability
   registry, the timeline recorder, the domain pool, and the solver
   cache are set up the same way everywhere. *)
let with_runtime (metrics, metrics_out, trace, domains, cache) run =
  apply_domains domains;
  apply_cache cache;
  with_trace trace @@ fun () -> with_metrics metrics metrics_out run

let runtime_args =
  Term.(
    const (fun metrics metrics_out trace domains cache ->
        (metrics, metrics_out, trace, domains, cache))
    $ metrics_arg $ metrics_out_arg $ trace_arg $ domains_arg $ cache_arg)

let build_system device rate capacity =
  match Presets.find device with
  | sp -> Ok (Sys_model.create ~sp ~queue_capacity:capacity ~arrival_rate:rate ())
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown device %S (try: %s)" device
           (String.concat ", " (List.map fst (Presets.all ()))))

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline msg;
      exit 1

(* --- robustness hooks ------------------------------------------------ *)

let no_validate_arg =
  let doc =
    "Skip the pre-solve model validation pass (the Section III \
     action-validity constraints, generator invariants, unichain \
     reachability)."
  in
  Arg.(value & flag & info [ "no-validate" ] ~doc)

let deadline_arg =
  let doc =
    "Wall-clock budget for the solve, in seconds.  The solver loops are \
     aborted at the first iteration past the budget and the command exits \
     with code 3."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let pp_diag d = Format.eprintf "%a@." Dpm_robust.Diagnostic.pp d

(* Pre-solve validation: report every finding (warnings included) on
   stderr; error-severity findings are fatal unless --no-validate,
   exiting with the invalid-model code of the error-class contract
   below. *)
let validate_or_die sys ~no_validate =
  if not no_validate then begin
    let diags = Dpm_robust.Validate.system sys in
    List.iter pp_diag diags;
    match Dpm_robust.Diagnostic.errors diags with
    | [] -> ()
    | errs ->
        prerr_endline "model validation failed (use --no-validate to bypass)";
        exit (Dpm_robust.Error.exit_code (Dpm_robust.Error.Invalid_model errs))
  end

(* The exit-code contract (also in the README): every solver failure
   maps through Dpm_robust.Error to one code per error class —
   3 deadline-exceeded, 4 singular, 5 nonconvergent, 6 cycling,
   7 invalid-model, 8 non-finite — with 1 reserved for generic CLI
   failures and 2 for an infeasible constrained problem.  Exceptions
   the taxonomy refuses (Out_of_memory, ...) keep unwinding. *)
let die_on_solver_error exn =
  match Dpm_robust.Error.of_exn exn with
  | Some e ->
      Format.eprintf "solve aborted: %a@." Dpm_robust.Error.pp e;
      exit (Dpm_robust.Error.exit_code e)
  | None -> raise exn

(* --- info ----------------------------------------------------------- *)

let info_cmd =
  let run runtime device rate capacity =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    Format.printf "device %s: lambda=%g, Q=%d, |X|=%d states@.%a@." device
      (Sys_model.arrival_rate sys) (Sys_model.queue_capacity sys)
      (Sys_model.num_states sys) Service_provider.pp (Sys_model.sp sys)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Show a device preset and its composed state space.")
    Term.(const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg)

(* --- check ----------------------------------------------------------- *)

(* Fault kinds that corrupt the model's choice table — the ones a
   validation drill must catch (Zero_row/Nan_entry/Duplicate_row hit
   matrices, Stall hits guards; they leave the choice table intact). *)
let model_level_fault = function
  | Dpm_robust.Fault.Nan_rate | Negative_rate | Nan_cost | Empty_choice
  | Bad_target | Duplicate_action ->
      true
  | Zero_row | Nan_entry | Duplicate_row | Stall -> false

let check_cmd =
  let run runtime device rate capacity weight =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    let n = Sys_model.num_states sys in
    match Dpm_robust.Fault.of_env () with
    | exception Invalid_argument msg ->
        prerr_endline msg;
        exit 1
    | Some plan ->
        (* Fault drill: corrupt the raw (pre-validation) choice table
           and demand that the validation pass rejects it.  A drill
           that lets a model-level fault through exits nonzero. *)
        let kinds =
          String.concat ","
            (List.map Dpm_robust.Fault.kind_to_string
               plan.Dpm_robust.Fault.kinds)
        in
        let raw = Dpm_robust.Validate.system_choices sys ~weight in
        let corrupted =
          Dpm_robust.Fault.corrupt_choices plan ~num_states:n raw
        in
        (match Dpm_robust.Validate.model_r ~num_states:n corrupted with
        | Error e ->
            Format.printf "fault drill [%s]: rejected as expected@.%a@." kinds
              Dpm_robust.Error.pp e
        | Ok _ ->
            if List.exists model_level_fault plan.Dpm_robust.Fault.kinds then begin
              Format.eprintf
                "fault drill [%s]: corrupted model escaped validation@." kinds;
              exit 1
            end
            else
              Format.printf
                "fault drill [%s]: no model-level faults in plan; model valid@."
                kinds)
    | None -> (
        let diags = Dpm_robust.Validate.system sys in
        List.iter (fun d -> Format.printf "%a@." Dpm_robust.Diagnostic.pp d) diags;
        match Dpm_robust.Diagnostic.errors diags with
        | [] ->
            Format.printf
              "ok: %s (lambda=%g, Q=%d, |X|=%d): Section III action \
               constraints, generator invariants and unichain reachability \
               all hold (%d warning%s)@."
              device rate capacity n
              (List.length diags)
              (if List.length diags = 1 then "" else "s")
        | errs ->
            Format.eprintf "check failed: %d error finding%s@."
              (List.length errs)
              (if List.length errs = 1 then "" else "s");
            exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate a device model: the paper's Section III action-validity \
          constraints, generator invariants (finite nonnegative rates, \
          in-range targets), and unichain reachability.  All violations are \
          reported, not just the first.  With $(b,DPM_FAULTS) set (e.g. \
          $(b,nan-rate,empty-choice)), runs a fault drill instead: the \
          model is deliberately corrupted and the command fails unless \
          validation catches it.")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ weight_arg)

(* --- solve ----------------------------------------------------------- *)

let print_solution sys (sol : Optimize.solution) =
  Format.printf "weight w = %g, policy iteration converged in %d sweeps@."
    sol.Optimize.weight sol.Optimize.iterations;
  Format.printf "gain (average weighted cost) = %.6f@." sol.Optimize.gain;
  Format.printf "%a@." Analytic.pp sol.Optimize.metrics;
  Format.printf "policy (rows: SP mode, '>' rows: transfer states):@.%s"
    (Policy_export.table sys (Optimize.action_of sys sol))

let provenance_arg =
  let doc =
    "After the solution, print its solve provenance as one JSON line: model \
     fingerprint, method and evaluation path, iterations, final residual, \
     cache origin (cold / warm / cache_hit), robustness retries, and \
     wall-clock time."
  in
  Arg.(value & flag & info [ "provenance" ] ~doc)

let eval_arg =
  let paths =
    [
      ("auto", Dpm_ctmdp.Policy_iteration.Auto);
      ("dense", Dpm_ctmdp.Policy_iteration.Dense);
      ("sparse", Dpm_ctmdp.Policy_iteration.Sparse);
      ("implicit", Dpm_ctmdp.Policy_iteration.Implicit);
    ]
  in
  let doc =
    "Policy-evaluation backend: $(docv) is "
    ^ Arg.doc_alts_enum paths
    ^ ".  $(b,auto) (the default) picks dense LU below ~200 states and \
       sparse Gauss-Seidel above; $(b,implicit) evaluates matrix-free \
       over flattened rate arrays (no generator is ever materialized — \
       the fastest and leanest path on large queue capacities, with the \
       sparse-then-dense ladder as verified fallback).  All backends \
       agree to solver tolerance; the choice is recorded in the solve \
       provenance (see $(b,--provenance)) and keys the solver cache."
  in
  Arg.(
    value
    & opt (enum paths) Dpm_ctmdp.Policy_iteration.Auto
    & info [ "eval" ] ~docv:"PATH" ~doc)

let solve_cmd =
  let run runtime device rate capacity weight no_validate deadline provenance
      eval =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    validate_or_die sys ~no_validate;
    let guard = Dpm_robust.Guard.of_deadline deadline in
    match Optimize.solve ~weight ~guard ~eval sys with
    | sol ->
        print_solution sys sol;
        if provenance then
          print_endline
            (Dpm_trace.Provenance.to_json sol.Optimize.provenance)
    | exception exn -> die_on_solver_error exn
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Optimize the power-management policy for a given delay weight.")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ weight_arg $ no_validate_arg $ deadline_arg $ provenance_arg
      $ eval_arg)

(* --- sweep ----------------------------------------------------------- *)

let weights_arg =
  let doc =
    "Comma-separated weight ladder to sweep instead of the default 20-point \
     geometric ladder from 0.1 to 500.  Repeated weights are legal and hit \
     the solver cache (see $(b,--cache-stats))."
  in
  Arg.(
    value
    & opt (some (list float)) None
    & info [ "weights" ] ~docv:"W1,W2,..." ~doc)

let cache_stats_arg =
  let doc =
    "After the CSV, print the solver-cache counters (hits, misses, \
     evictions, hit ratio) on stderr."
  in
  Arg.(value & flag & info [ "cache-stats" ] ~doc)

let sweep_cmd =
  let run runtime device rate capacity no_validate weights deadline cache_stats
      =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    validate_or_die sys ~no_validate;
    let weights = Option.value weights ~default:Optimize.default_weights in
    let guard = Dpm_robust.Guard.of_deadline deadline in
    (* Per-point failure containment: failed grid points are dropped
       from the CSV; the rest of the frontier still prints.  Only a
       fully failed sweep is fatal. *)
    let results = Optimize.sweep_r ~guard sys ~weights in
    let ok =
      List.filter_map (fun (_, r) -> Result.to_option r) results
    in
    let failures =
      List.filter_map
        (fun (w, r) -> match r with Error exn -> Some (w, exn) | Ok _ -> None)
        results
    in
    (* Each distinct failure is emitted exactly once, with every weight
       it hit — a deadline tripping mid-grid fails all remaining points
       with the same error and must not repeat per point.  Deadline
       signals are grouped by budget (their elapsed field necessarily
       differs per point). *)
    let failure_label = function
      | Dpm_robust.Error.Deadline_signal { budget_s; _ } ->
          Printf.sprintf "deadline of %gs exceeded" budget_s
      | exn -> Printexc.to_string exn
    in
    let groups =
      List.fold_left
        (fun acc (w, exn) ->
          let msg = failure_label exn in
          match List.assoc_opt msg acc with
          | Some ws ->
              ws := w :: !ws;
              acc
          | None -> acc @ [ (msg, ref [ w ]) ])
        [] failures
    in
    List.iter
      (fun (msg, ws) ->
        let ws = List.rev !ws in
        Format.eprintf "# %d weight%s failed (%s): %s@." (List.length ws)
          (if List.length ws = 1 then "" else "s")
          (String.concat ", " (List.map (Printf.sprintf "%g") ws))
          msg)
      groups;
    let deadline_hit =
      List.exists
        (fun (_, exn) ->
          match exn with
          | Dpm_robust.Error.Deadline_signal _ -> true
          | _ -> false)
        failures
    in
    if ok = [] then begin
      prerr_endline "sweep: every grid point failed";
      (* Deadline keeps precedence (the historical sweep contract);
         otherwise the earliest failure picks the class code. *)
      if deadline_hit then exit 3
      else
        exit
          (match failures with
          | (_, exn) :: _ -> (
              match Dpm_robust.Error.of_exn exn with
              | Some e -> Dpm_robust.Error.exit_code e
              | None -> 1)
          | [] -> 1)
    end;
    Printf.printf "weight,power_w,waiting_requests,waiting_time_s,loss_probability\n";
    List.iter
      (fun (sol : Optimize.solution) ->
        let m = sol.Optimize.metrics in
        Printf.printf "%g,%.6f,%.6f,%.6f,%.8f\n" sol.Optimize.weight
          m.Analytic.power m.Analytic.avg_waiting_requests
          m.Analytic.avg_waiting_time m.Analytic.loss_probability)
      (Optimize.pareto ok);
    if cache_stats then begin
      let s = Dpm_cache.Solve_cache.stats () in
      Format.eprintf
        "# cache: capacity=%d size=%d hits=%d misses=%d evictions=%d \
         hit_ratio=%.3f@."
        s.Dpm_cache.Lru.capacity s.Dpm_cache.Lru.size s.Dpm_cache.Lru.hits
        s.Dpm_cache.Lru.misses s.Dpm_cache.Lru.evictions
        (Dpm_cache.Solve_cache.hit_ratio ())
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Trace the Pareto power/delay curve over a weight ladder (CSV).")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ no_validate_arg $ weights_arg $ deadline_arg $ cache_stats_arg)

(* --- constrained ------------------------------------------------------ *)

let constrained_cmd =
  let bound_arg =
    let doc = "Upper bound on the average number of waiting requests." in
    Arg.(value & opt float 1.0 & info [ "max-waiting"; "b" ] ~docv:"L" ~doc)
  in
  let exact_arg =
    let doc =
      "Solve exactly by linear programming over occupation measures        (Section IV); the optimum may randomize in one state."
    in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run runtime device rate capacity bound exact no_validate =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    validate_or_die sys ~no_validate;
    if exact then begin
      match Optimize.constrained_exact sys ~max_waiting_requests:bound with
      | None ->
          prerr_endline "infeasible: no stationary policy meets the bound";
          exit 2
      | Some r ->
          Format.printf
            "exact LP optimum (shadow price lambda* = %g):@.%a@."
            r.Optimize.lagrange_multiplier Analytic.pp r.Optimize.metrics;
          let sp = Sys_model.sp sys in
          Array.iteri
            (fun k dist ->
              let x = Sys_model.state_of_index sys k in
              match dist with
              | [ (a, _) ] ->
                  Format.printf "  %a -> %s@." (Sys_model.pp_state sys) x
                    (Service_provider.name sp a)
              | mixture ->
                  Format.printf "  %a -> {%s}  (randomized)@."
                    (Sys_model.pp_state sys) x
                    (String.concat ", "
                       (List.map
                          (fun (a, p) ->
                            Printf.sprintf "%s: %.4f"
                              (Service_provider.name sp a) p)
                          mixture)))
            r.Optimize.distributions;
          (match r.Optimize.randomized_states with
          | [] -> Format.printf "no randomization needed (hull vertex)@."
          | xs ->
              Format.printf
                "realize with Controller.time_shared between the adjacent                  deterministic policies (%d mixing state%s)@."
                (List.length xs)
                (if List.length xs = 1 then "" else "s"))
    end
    else
      match Optimize.constrained sys ~max_waiting_requests:bound with
      | None ->
          prerr_endline
            "infeasible for deterministic policies (try --exact for the LP              over randomized policies)";
          exit 2
      | Some sol -> print_solution sys sol
  in
  Cmd.v
    (Cmd.info "constrained"
       ~doc:
         "Minimize power subject to a bound on the average queue length           (weight bisection, or the exact LP with --exact).")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ bound_arg $ exact_arg $ no_validate_arg)

(* --- simulate ---------------------------------------------------------- *)

(* The grammar lives next to the workload constructors so the CLI, the
   adapt harness, and the tests all parse the same specs. *)
let workload_of_spec rate spec = Dpm_sim.Workload.of_spec ~rate spec

let controller_of_spec sys spec =
  let fail () =
    Error
      (Printf.sprintf
         "unknown controller %S (try: optimal:<w>, greedy, always-on, n:<N>, \
          timeout:<seconds>)"
         spec)
  in
  match String.split_on_char ':' spec with
  | [ "greedy" ] -> Ok (Dpm_sim.Controller.greedy sys)
  | [ "always-on" ] -> Ok (Dpm_sim.Controller.always_on sys)
  | [ "optimal"; w ] -> (
      match float_of_string_opt w with
      | Some w -> Ok (Dpm_sim.Controller.of_solution sys (Optimize.solve ~weight:w sys))
      | None -> fail ())
  | [ "n"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (Dpm_sim.Controller.n_policy sys ~n)
      | Some _ | None -> fail ())
  | [ "timeout"; d ] -> (
      match float_of_string_opt d with
      | Some d when d >= 0.0 -> Ok (Dpm_sim.Controller.timeout sys ~delay:d)
      | Some _ | None -> fail ())
  | _ -> fail ()

let simulate_cmd =
  let controller_arg =
    let doc =
      "Controller: optimal:<w>, greedy, always-on, n:<N>, or \
       timeout:<seconds>."
    in
    Arg.(value & opt string "optimal:1" & info [ "controller"; "c" ] ~docv:"CTL" ~doc)
  in
  let csv_trace_arg =
    let doc =
      "Write a CSV event trace (last 65k events) to this file.  Distinct \
       from the global $(b,--trace), which records the Chrome-format \
       runtime timeline."
    in
    Cmdliner.Arg.(
      value & opt (some string) None & info [ "csv-trace" ] ~docv:"FILE" ~doc)
  in
  let csv_server_id_arg =
    let doc =
      "Tag every $(b,--csv-trace) row with this fleet server id (appends a \
       $(b,server) column), so per-server traces from a fleet run can be \
       concatenated into one file.  Without it the CSV shape is unchanged."
    in
    Cmdliner.Arg.(
      value & opt (some int) None & info [ "csv-server-id" ] ~docv:"ID" ~doc)
  in
  let workload_arg =
    let doc =
      "Workload: poisson (at --rate), \
       piecewise:<r1>@<t1>,...,<r_final> (rate r1 until time t1, ..., \
       then r_final), mmpp:<r1>:<r2>:<switch>, trace-file:<path> (one \
       absolute arrival time per line), or intervals-file:<path> (one \
       inter-arrival gap per line)."
    in
    Arg.(value & opt string "poisson" & info [ "workload" ] ~docv:"W" ~doc)
  in
  let replications_arg =
    let doc =
      "Run this many independent replications (seeds derived from --seed by \
       the splitmix64 stream, run on the --domains pool) and print \
       per-replication lines plus a mean +/- 95% CI summary.  \
       Incompatible with --csv-trace."
    in
    Arg.(value & opt int 1 & info [ "replications" ] ~docv:"R" ~doc)
  in
  let run runtime device rate capacity spec workload_spec requests seed
      replications trace_file csv_server_id =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    if replications < 1 then begin
      prerr_endline "--replications must be >= 1";
      exit 1
    end;
    if replications > 1 then begin
      if trace_file <> None then begin
        prerr_endline
          "--csv-trace only applies to a single run (replications=1)";
        exit 1
      end;
      let rs =
        Dpm_sim.Power_sim.replicate ~seed:(Int64.of_int seed) ~n:replications
          ~sys
          ~workload:(fun () -> or_die (workload_of_spec rate workload_spec))
          ~controller:(fun () -> or_die (controller_of_spec sys spec))
          ~stop:(Dpm_sim.Power_sim.Requests requests)
          ()
      in
      List.iteri
        (fun k r -> Format.printf "rep %2d: %a@." (k + 1) Dpm_sim.Power_sim.pp r)
        rs;
      let s = Dpm_sim.Summary.of_results rs in
      Format.printf
        "summary (%d replications): power %a W, waiting %a req, wait time %a \
         s, loss %a@."
        replications Dpm_sim.Summary.pp_estimate s.Dpm_sim.Summary.power
        Dpm_sim.Summary.pp_estimate s.Dpm_sim.Summary.waiting_requests
        Dpm_sim.Summary.pp_estimate s.Dpm_sim.Summary.waiting_time
        Dpm_sim.Summary.pp_estimate s.Dpm_sim.Summary.loss_probability
    end
    else begin
      let controller = or_die (controller_of_spec sys spec) in
      let workload = or_die (workload_of_spec rate workload_spec) in
      let trace = Dpm_sim.Trace.create () in
      let observer =
        match trace_file with
        | Some _ -> Some (Dpm_sim.Trace.observer trace)
        | None -> None
      in
      let r =
        Dpm_sim.Power_sim.run ~seed:(Int64.of_int seed) ?observer ~sys ~workload
          ~controller
          ~stop:(Dpm_sim.Power_sim.Requests requests)
          ()
      in
      (match trace_file with
      | Some file ->
          let oc = open_out file in
          output_string oc (Dpm_sim.Trace.to_csv ?server:csv_server_id trace);
          close_out oc;
          Format.printf "trace: %d events written to %s (%d dropped)@."
            (Dpm_sim.Trace.length trace) file
            (Dpm_sim.Trace.dropped trace)
      | None -> ());
      Format.printf "%a@." Dpm_sim.Power_sim.pp r;
      Format.printf
        "duration %.1f s, generated %d, accepted %d, completed %d, switch \
         energy %.2f J@."
        r.Dpm_sim.Power_sim.duration r.Dpm_sim.Power_sim.generated
        r.Dpm_sim.Power_sim.accepted r.Dpm_sim.Power_sim.completed
        r.Dpm_sim.Power_sim.switch_energy;
      Format.printf "mode residency:";
      Array.iteri
        (fun s f ->
          Format.printf " %s=%.1f%%"
            (Service_provider.name (Sys_model.sp sys) s)
            (100.0 *. f))
        r.Dpm_sim.Power_sim.mode_residency;
      Format.printf "@."
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the event-driven simulator (Section V).")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ controller_arg $ workload_arg $ requests_arg $ seed_arg
      $ replications_arg $ csv_trace_arg $ csv_server_id_arg)

(* --- adapt -------------------------------------------------------------- *)

let adapt_cmd =
  let segments_arg =
    let doc =
      "Drifting workload: comma-separated RATE@UNTIL entries (rate until \
       that time) closed by a bare final RATE, e.g. \
       $(b,0.083@4000,0.333@8000,0.125)."
    in
    Arg.(
      value
      & opt string "0.0833@4000,0.3333@8000,0.125"
      & info [ "segments" ] ~docv:"SPEC" ~doc)
  in
  let horizon_arg =
    let doc = "Simulated seconds per run." in
    Arg.(value & opt float 12_000.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc)
  in
  let window_arg =
    let doc = "Sliding window of the arrival-rate estimator, in gaps." in
    Arg.(value & opt int 50 & info [ "window" ] ~docv:"GAPS" ~doc)
  in
  let cooldown_arg =
    let doc = "Minimum simulated seconds between re-solve attempts." in
    Arg.(value & opt float 150.0 & info [ "cooldown" ] ~docv:"SECONDS" ~doc)
  in
  let resolve_deadline_arg =
    let doc =
      "Wall-clock budget per online re-solve, in seconds.  An expired \
       budget counts as a failed attempt and the incumbent policy stays \
       deployed (the run continues)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "resolve-deadline" ] ~docv:"SECONDS" ~doc)
  in
  let run runtime device rate capacity weight segments_spec horizon window
      cooldown deadline_s seed =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    let segments, final_rate =
      or_die (Dpm_sim.Workload.segments_of_spec segments_spec)
    in
    let c =
      Dpm_adapt.Harness.compare ~seed:(Int64.of_int seed) ~weight ~window
        ~cooldown ?deadline_s ~sys ~segments ~final_rate ~horizon ()
    in
    Format.printf "%a@." Dpm_adapt.Harness.pp c;
    Format.printf "@.per-segment (adaptive):@.";
    Format.printf "%-24s %10s %10s %8s@." "segment" "power(W)" "E[queue]"
      "lost";
    Array.iter
      (fun (s : Dpm_sim.Power_sim.segment) ->
        if s.Dpm_sim.Power_sim.seg_end > s.Dpm_sim.Power_sim.seg_start then
          Format.printf "%-24s %10.4f %10.4f %8d@."
            (Printf.sprintf "[%g, %g)" s.Dpm_sim.Power_sim.seg_start
               s.Dpm_sim.Power_sim.seg_end)
            s.Dpm_sim.Power_sim.seg_power
            s.Dpm_sim.Power_sim.seg_waiting_requests
            s.Dpm_sim.Power_sim.seg_lost)
      c.Dpm_adapt.Harness.adaptive.Dpm_adapt.Harness.result
        .Dpm_sim.Power_sim.segments
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Compare the online-adaptive power manager against the static \
          optimum, the per-segment oracle, and the heuristics on a drifting \
          workload.")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ weight_arg $ segments_arg $ horizon_arg $ window_arg $ cooldown_arg
      $ resolve_deadline_arg $ seed_arg)

(* --- serve -------------------------------------------------------------- *)

let serve_cmd =
  let checkpoint_arg =
    let doc =
      "Checkpoint file.  On startup, a readable checkpoint whose fingerprint \
       matches the configured system restores the deployed policy, health \
       state and estimator; a mismatched or corrupt one pins the safe \
       policy (safe-mode).  While serving, the daemon re-saves atomically \
       every $(b,--checkpoint-every) arrivals and on exit."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every_arg =
    let doc = "Arrivals between automatic checkpoints." in
    Arg.(value & opt int 64 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let window_arg =
    let doc = "Sliding window of the arrival-rate estimator, in gaps." in
    Arg.(value & opt int 50 & info [ "window" ] ~docv:"GAPS" ~doc)
  in
  let min_observations_arg =
    let doc = "Gaps required before drift detection may re-solve." in
    Arg.(value & opt int 30 & info [ "min-observations" ] ~docv:"N" ~doc)
  in
  let cooldown_arg =
    let doc = "Minimum simulated seconds between re-solve attempts." in
    Arg.(value & opt float 100.0 & info [ "cooldown" ] ~docv:"SECONDS" ~doc)
  in
  let resolve_deadline_arg =
    let doc =
      "Wall-clock watchdog budget per online re-solve, in seconds.  A \
       wedged re-solve is aborted at the next solver iteration past the \
       budget, counts as a failed attempt (health degrades, backoff \
       grows), and the incumbent policy keeps answering."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "resolve-deadline" ] ~docv:"SECONDS" ~doc)
  in
  let ingest_capacity_arg =
    let doc =
      "Bounded ingestion queue capacity; arrival events beyond it are \
       dropped and counted (see the $(b,stats) command of the protocol)."
    in
    Arg.(value & opt int 1024 & info [ "ingest-capacity" ] ~docv:"N" ~doc)
  in
  let run runtime device rate capacity weight no_validate checkpoint_path
      checkpoint_every window min_observations cooldown deadline_s
      queue_capacity =
    with_runtime runtime @@ fun () ->
    let serve () =
      let sys = or_die (build_system device rate capacity) in
      validate_or_die sys ~no_validate;
      let estimator = Dpm_adapt.Estimator.sliding_window ~window () in
      let engine =
        Dpm_serve.Engine.create ~weight ~estimator ~min_observations ~cooldown
          ?deadline_s ?checkpoint_path ~checkpoint_every ~queue_capacity sys
      in
      Format.eprintf "dpm_cli serve: ready device=%s health=%s restored=%b@."
        device
        (Dpm_serve.Health.state_to_string (Dpm_serve.Engine.health engine))
        (Dpm_serve.Engine.restored engine);
      Dpm_serve.Server.run engine ~input:stdin ~output:stdout
    in
    (* The protocol's [metrics] command needs a live registry even
       without --metrics; install a private one in that case. *)
    if Dpm_obs.Probe.enabled () then serve ()
    else Dpm_obs.Probe.with_active (Dpm_obs.Metrics.create ()) serve
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the supervised policy daemon: ingest arrival events and \
          answer state-to-action queries over a newline-delimited protocol \
          on stdin/stdout (arrival times, $(b,decide), $(b,health), \
          $(b,stats), $(b,metrics), $(b,provenance), $(b,checkpoint), \
          $(b,quit)).  Policies are re-solved online under a watchdog \
          deadline with exponential backoff; every failure keeps the \
          incumbent policy deployed, and an untrusted checkpoint pins the \
          always-on safe policy — the daemon answers every query in any \
          health state.")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ weight_arg $ no_validate_arg $ checkpoint_arg $ checkpoint_every_arg
      $ window_arg $ min_observations_arg $ cooldown_arg
      $ resolve_deadline_arg $ ingest_capacity_arg)

(* --- fleet -------------------------------------------------------------- *)

let fleet_cmd =
  let servers_arg =
    let doc = "Total server count." in
    Arg.(value & opt int 12 & info [ "servers" ] ~docv:"N" ~doc)
  in
  let distinct_arg =
    let doc =
      "Number of heterogeneous groups (distinct per-server models: the \
       device's SP with queue capacities $(b,--capacity), \
       $(b,--capacity)+1, ...).  Servers are spread evenly across groups."
    in
    Arg.(value & opt int 2 & info [ "distinct" ] ~docv:"K" ~doc)
  in
  let fleet_rate_arg =
    let doc = "Fleet-wide arrival rate (requests/s), used when --segments is not given." in
    Arg.(value & opt float 1.0 & info [ "rate"; "r" ] ~docv:"LAMBDA" ~doc)
  in
  let segments_arg =
    let doc =
      "Fleet-wide arrival plan: comma-separated RATE@UNTIL entries closed \
       by a bare final RATE (the $(b,adapt) grammar), e.g. \
       $(b,2@800,0.8@1400,1.5).  Defaults to a flat plan at --rate."
    in
    Arg.(value & opt (some string) None & info [ "segments" ] ~docv:"SPEC" ~doc)
  in
  let horizon_arg =
    let doc = "Simulated seconds (every server runs the whole horizon)." in
    Arg.(value & opt float 2_000.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc)
  in
  let min_active_arg =
    let doc = "The cluster never deactivates below this many servers." in
    Arg.(value & opt int 1 & info [ "min-active" ] ~docv:"K" ~doc)
  in
  let loss_penalty_arg =
    let doc =
      "Cluster-level cost (J) per rejected request.  Zero reproduces the \
       loss-blind Eqn. (3.1) economics, under which shedding overload can \
       beat scaling out."
    in
    Arg.(value & opt float 100.0 & info [ "loss-penalty" ] ~docv:"J" ~doc)
  in
  let run runtime device rate capacity weight servers distinct segments_spec
      horizon min_active loss_penalty seed =
    with_runtime runtime @@ fun () ->
    if servers < 1 then begin
      prerr_endline "--servers must be >= 1";
      exit 1
    end;
    if distinct < 1 || distinct > servers then begin
      prerr_endline "--distinct must be within [1, --servers]";
      exit 1
    end;
    let segments, final_rate =
      match segments_spec with
      | None -> ([], rate)
      | Some spec -> or_die (Dpm_sim.Workload.segments_of_spec spec)
    in
    (* The device argument fixes the SP; groups differ by queue depth. *)
    let sp_of () =
      match Presets.find device with
      | sp -> sp
      | exception Not_found ->
          prerr_endline
            (Printf.sprintf "unknown device %S (try: %s)" device
               (String.concat ", " (List.map fst (Presets.all ()))));
          exit 1
    in
    let spec =
      let base = servers / distinct and extra = servers mod distinct in
      Dpm_fleet.Spec.create ~weight ~min_active ~loss_penalty
        ~boot_rate:0.5 ~boot_energy:20.0 ~shutdown_rate:1.0
        ~shutdown_energy:5.0
        (List.init distinct (fun i ->
             Dpm_fleet.Spec.group
               ~name:(Printf.sprintf "%s-q%d" device (capacity + i))
               ~sp:(sp_of ())
               ~queue_capacity:(capacity + i)
               ~count:(base + if i < extra then 1 else 0)
               ~off_power:0.1 ()))
    in
    let r =
      Dpm_fleet.Fleet_sim.run ~seed:(Int64.of_int seed) spec ~segments
        ~final_rate ~horizon
    in
    Format.printf "%a" Dpm_fleet.Fleet_sim.pp r;
    let m = Dpm_fleet.Cluster.measures r.Dpm_fleet.Fleet_sim.cluster in
    Format.printf
      "cluster stationary: E[active]=%.2f power=%.2f W throughput=%.4f \
       req/s wait=%.4f s@."
      m.Dpm_fleet.Cluster.expected_active m.Dpm_fleet.Cluster.fleet_power
      m.Dpm_fleet.Cluster.fleet_throughput
      m.Dpm_fleet.Cluster.fleet_waiting_time;
    if r.Dpm_fleet.Fleet_sim.resolve_failures > 0 then
      Format.printf "WARNING: %d per-server solves degraded to incumbents@."
        r.Dpm_fleet.Fleet_sim.resolve_failures
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate a hierarchical multi-server fleet: a cluster CTMDP picks \
          the active server count per load phase, deduplicated per-server \
          CTMDP solves supply the power policies, and every server is \
          simulated over the full horizon with per-tier energy accounting.")
    Term.(
      const run $ runtime_args $ device_arg $ fleet_rate_arg $ capacity_arg
      $ weight_arg $ servers_arg $ distinct_arg $ segments_arg $ horizon_arg
      $ min_active_arg $ loss_penalty_arg $ seed_arg)

(* --- dot --------------------------------------------------------------- *)

let dot_cmd =
  let what_arg =
    let doc = "Which chain to render: sp, sq, or sys." in
    Arg.(value & pos 0 string "sp" & info [] ~docv:"WHAT" ~doc)
  in
  let run runtime device rate capacity weight what =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    let sp = Sys_model.sp sys in
    let sol = Optimize.solve ~weight sys in
    match what with
    | "sp" ->
        (* Figure 1: the SP chain under the policy's empty-queue
           stable-state commands. *)
        print_string
          (Service_provider.to_dot sp ~action_of:(fun s ->
               Optimize.action_of sys sol (Sys_model.Stable (s, 0))))
    | "sq" ->
        (* Figure 2: the SQ chain conditioned on the fastest active
           mode commanding sleep at transfers, as in Example 4.3. *)
        let a0 = Service_provider.fastest_active sp in
        let sleep = try Service_provider.deepest_sleep sp with Not_found -> a0 in
        print_string
          (Service_queue.to_dot ~capacity:(Sys_model.queue_capacity sys)
             ~arrival_rate:rate
             ~service_rate:(Service_provider.service_rate sp a0)
             ~switch_out_rate:
               (if sleep = a0 then Sys_model.self_switch_rate sys
                else Service_provider.switch_rate sp a0 sleep))
    | "sys" ->
        let g =
          Sys_model.generator_of_actions sys ~actions:(Optimize.action_of sys sol)
        in
        print_string
          (Dpm_ctmc.Dot.of_generator ~name:"sys"
             ~state_label:(fun k ->
               Format.asprintf "%a" (Sys_model.pp_state sys)
                 (Sys_model.state_of_index sys k))
             g)
    | other ->
        prerr_endline ("unknown graph " ^ other ^ " (try sp, sq, sys)");
        exit 1
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Emit Graphviz DOT for the SP, SQ, or composed SYS chain \
          (regenerates the paper's Figures 1-2).")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ weight_arg $ what_arg)

(* --- report ------------------------------------------------------------- *)

let report_cmd =
  let bound_arg =
    let doc = "Delay bound (average waiting requests) for the constrained section." in
    Arg.(value & opt float 1.0 & info [ "max-waiting"; "b" ] ~docv:"L" ~doc)
  in
  let run runtime device rate capacity bound seed =
    with_runtime runtime @@ fun () ->
    let sys = or_die (build_system device rate capacity) in
    let sp = Sys_model.sp sys in
    Format.printf "# Power-management report: %s@.@." device;
    Format.printf "- arrival rate lambda = %g requests/s (mean inter-arrival %.3g s)@."
      rate (1.0 /. rate);
    Format.printf "- queue capacity Q = %d; composed state space |X| = %d@.@."
      capacity (Sys_model.num_states sys);
    Format.printf "## Device@.@.```@.%a```@.@." Service_provider.pp sp;
    (* Trade-off frontier. *)
    Format.printf "## Power/delay frontier (analytic)@.@.";
    Format.printf "| weight | power (W) | waiting (req) | waiting time (s) |@.";
    Format.printf "|---|---|---|---|@.";
    List.iter
      (fun (sol : Optimize.solution) ->
        let m = sol.Optimize.metrics in
        Format.printf "| %g | %.4f | %.4f | %.4f |@." sol.Optimize.weight
          m.Analytic.power m.Analytic.avg_waiting_requests
          m.Analytic.avg_waiting_time)
      (Optimize.pareto (Optimize.sweep sys ~weights:Optimize.default_weights));
    (* Constrained optimum + validation. *)
    Format.printf "@.## Minimum power with waiting <= %g requests@.@." bound;
    (match Optimize.constrained sys ~max_waiting_requests:bound with
    | None -> Format.printf "infeasible: the device cannot meet this bound.@."
    | Some sol ->
        Format.printf "- weight found by bisection: w = %g@." sol.Optimize.weight;
        Format.printf "- analytic: %a@." Analytic.pp sol.Optimize.metrics;
        let r =
          Dpm_sim.Power_sim.run ~seed:(Int64.of_int seed) ~sys
            ~workload:(Dpm_sim.Workload.poisson ~rate)
            ~controller:(Dpm_sim.Controller.of_solution sys sol)
            ~stop:(Dpm_sim.Power_sim.Requests 50_000) ()
        in
        Format.printf "- simulated (50k requests): %a@." Dpm_sim.Power_sim.pp r;
        Format.printf "- model-vs-simulation gap: power %+.2f%%, waiting %+.2f%%@.@."
          ((r.Dpm_sim.Power_sim.avg_power -. sol.Optimize.metrics.Analytic.power)
          /. sol.Optimize.metrics.Analytic.power *. 100.0)
          ((r.Dpm_sim.Power_sim.avg_waiting_requests
           -. sol.Optimize.metrics.Analytic.avg_waiting_requests)
          /. sol.Optimize.metrics.Analytic.avg_waiting_requests *. 100.0);
        Format.printf "### Policy@.@.```@.%s```@."
          (Policy_export.table sys (Optimize.action_of sys sol)));
    (* Heuristic comparison. *)
    Format.printf "@.## Heuristic baselines (analytic)@.@.";
    Format.printf "| policy | power (W) | waiting (req) |@.|---|---|---|@.";
    let row name actions =
      match Analytic.of_actions sys ~actions with
      | m ->
          Format.printf "| %s | %.4f | %.4f |@." name m.Analytic.power
            m.Analytic.avg_waiting_requests
      | exception _ -> Format.printf "| %s | - | - |@." name
    in
    row "always-on" (Policies.always_on sys);
    row "greedy" (Policies.greedy sys);
    for n = 1 to min 5 capacity do
      row (Printf.sprintf "N-policy N=%d" n) (Policies.n_policy sys ~n)
    done
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Produce a markdown power-management analysis for a device:           frontier, constrained optimum with simulation cross-check, and           heuristic baselines.")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ bound_arg $ seed_arg)

(* --- scenario ------------------------------------------------------------ *)

let scenario_cmd =
  let open Dpm_scenario in
  let family_arg =
    let doc =
      "Workload family: $(b,phased) (phase-type service expansion of the \
       paper system), $(b,polling) (one server over K bounded queues with \
       switch-over times), or $(b,batching) (batch size as a decision)."
    in
    Arg.(
      required
      & pos 0
          (some
             (Arg.enum
                [
                  ("phased", `Phased);
                  ("polling", `Polling);
                  ("batching", `Batching);
                ]))
          None
      & info [] ~docv:"FAMILY" ~doc)
  in
  let service_arg =
    let doc =
      "Service distribution for the phased family: $(b,exp:RATE), \
       $(b,erlang:K:RATE), $(b,hyper2:P:R1:R2), or $(b,fit:MEAN:SCV)."
    in
    Arg.(value & opt string "fit:1.5:0.25" & info [ "service" ] ~docv:"SPEC" ~doc)
  in
  let queue_arg =
    let doc =
      "A polling queue as $(b,LAMBDA,CAP[,SERVICE[,SWITCH]]) with SERVICE \
       and SWITCH in the --service grammar (defaults exp:1 and exp:10).  \
       Repeatable; omitting it entirely gives the two-queue example \
       $(b,0.25,2) and $(b,0.4,2)."
    in
    Arg.(value & opt_all string [] & info [ "queue" ] ~docv:"SPEC" ~doc)
  in
  let loss_penalty_arg =
    let doc = "Cost per lost request (polling family)." in
    Arg.(value & opt float 0.0 & info [ "loss-penalty" ] ~docv:"C" ~doc)
  in
  let max_batch_arg =
    let doc = "Largest batch size the batching policy may form." in
    Arg.(
      value & opt int Batching.max_batch & info [ "max-batch" ] ~docv:"B" ~doc)
  in
  let batch_rates_arg =
    let doc =
      "Comma-separated completion rates of batch sizes 1..B (batching \
       family).  Default: the device's service rate for every size."
    in
    Arg.(value & opt (some string) None & info [ "batch-rates" ] ~docv:"CSV" ~doc)
  in
  let batch_energy_arg =
    let doc =
      "Comma-separated energies per completed batch of sizes 1..B.  \
       Default: zero."
    in
    Arg.(
      value & opt (some string) None & info [ "batch-energy" ] ~docv:"CSV" ~doc)
  in
  let dist_of_spec spec =
    match Phase_type.of_spec spec with
    | Ok d -> d
    | Error msg ->
        prerr_endline msg;
        exit 1
  in
  let floats_of_csv ~flag csv =
    List.map
      (fun f ->
        match float_of_string_opt (String.trim f) with
        | Some v -> v
        | None ->
            prerr_endline
              (Printf.sprintf "%s: not a number: %S" flag (String.trim f));
            exit 1)
      (String.split_on_char ',' csv)
  in
  let queue_of_spec spec =
    match String.split_on_char ',' spec with
    | lam :: cap :: rest when List.length rest <= 2 -> (
        match
          (float_of_string_opt (String.trim lam), int_of_string_opt (String.trim cap))
        with
        | Some arrival_rate, Some capacity ->
            let service =
              match rest with s :: _ -> Some (dist_of_spec s) | [] -> None
            in
            let switch_over =
              match rest with [ _; s ] -> Some (dist_of_spec s) | _ -> None
            in
            Polling.queue ?service ?switch_over ~arrival_rate ~capacity ()
        | _ ->
            prerr_endline
              (Printf.sprintf "bad queue spec %S (want LAMBDA,CAP[,SERVICE[,SWITCH]])"
                 spec);
            exit 1)
    | _ ->
        prerr_endline
          (Printf.sprintf "bad queue spec %S (want LAMBDA,CAP[,SERVICE[,SWITCH]])"
             spec);
        exit 1
  in
  let run runtime device rate capacity weight deadline family service_spec
      queue_specs loss_penalty max_batch batch_rates batch_energy =
    with_runtime runtime @@ fun () ->
    let build f = try f () with Invalid_argument msg -> prerr_endline msg; exit 1 in
    (* Shared reporting: the gain is cross-checked against the
       closed-loop stationary distribution (an independent numerical
       path), so the printed pair is its own sanity check. *)
    let report name describe model =
      match Solve.solve ?deadline_s:deadline model with
      | Error e ->
          Format.eprintf "solve aborted: %a@." Dpm_robust.Error.pp e;
          exit (Dpm_robust.Error.exit_code e)
      | Ok s ->
          Format.printf "scenario: %s@." name;
          describe ();
          Format.printf "states: %d@." (Dpm_ctmdp.Model.num_states model);
          Format.printf "iterations: %d@." s.Solve.iterations;
          Format.printf "gain: %.9f@." s.Solve.gain;
          Format.printf "stationary cross-check: %.9f@."
            (Solve.stationary_gain model ~actions:s.Solve.actions);
          s
    in
    match family with
    | `Phased ->
        let service = dist_of_spec service_spec in
        let sp = or_die (Result.map Sys_model.sp (build_system device rate capacity)) in
        let ph =
          build (fun () ->
              Phased.create ~sp ~queue_capacity:capacity ~arrival_rate:rate
                ~service ())
        in
        ignore
          (report "phased"
             (fun () ->
               Format.printf "service: %s (mean %g, scv %g)@."
                 (Phase_type.to_spec service) (Phase_type.mean service)
                 (Phase_type.scv service);
               Format.printf "weight: %g@." weight)
             (Phased.to_ctmdp ph ~weight))
    | `Polling ->
        let queues =
          match queue_specs with
          | [] -> [ queue_of_spec "0.25,2"; queue_of_spec "0.4,2" ]
          | specs -> List.map queue_of_spec specs
        in
        let p = build (fun () -> Polling.create ~loss_penalty queues) in
        let s =
          report "polling"
            (fun () ->
              Array.iteri
                (fun j (q : Polling.queue) ->
                  Format.printf
                    "queue %d: lambda=%g cap=%d service=%s switch=%s@." j
                    q.Polling.arrival_rate q.Polling.capacity
                    (Phase_type.to_spec q.Polling.service)
                    (Phase_type.to_spec q.Polling.switch_over))
                (Polling.queues p))
            (Polling.to_ctmdp p)
        in
        let count f = Array.fold_left (fun n a -> if f a then n + 1 else n) 0 s.Solve.actions in
        Format.printf "policy: serve %d | goto %d | sleep %d | stay %d@."
          (count (fun a -> a = Polling.action_serve p))
          (count (fun a -> a >= 1 && a <= Polling.num_queues p))
          (count (fun a -> a = Polling.action_sleep p))
          (count (fun a -> a = Polling.action_stay))
    | `Batching ->
        let sys = or_die (build_system device rate capacity) in
        let sp = Sys_model.sp sys in
        let default_mu =
          Service_provider.service_rate sp (Service_provider.fastest_active sp)
        in
        let table flag spec default =
          match spec with
          | None -> fun _ -> default
          | Some csv ->
              let a = Array.of_list (floats_of_csv ~flag csv) in
              if Array.length a < max_batch then begin
                prerr_endline
                  (Printf.sprintf "%s: need %d values, got %d" flag max_batch
                     (Array.length a));
                exit 1
              end;
              fun b -> a.(b - 1)
        in
        let service_rate = table "--batch-rates" batch_rates default_mu in
        let batch_energy = table "--batch-energy" batch_energy 0.0 in
        let b =
          build (fun () ->
              Batching.create ~batch_energy ~sys ~max_batch ~service_rate ())
        in
        let s =
          report "batching"
            (fun () ->
              Format.printf "batch rates: %s@."
                (String.concat ", "
                   (List.init max_batch (fun k ->
                        Printf.sprintf "%g" (service_rate (k + 1)))));
              Format.printf "weight: %g@." weight)
            (Batching.to_ctmdp b ~weight)
        in
        let largest =
          Array.fold_left
            (fun acc a -> max acc (Batching.batch_of_action b a))
            1 s.Solve.actions
        in
        Format.printf "largest batch used: %d@." largest
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Solve a scenario-library workload (phase-type service, K-queue \
          polling, dynamic batching) through the standard solver stack and \
          cross-check the optimum against the closed-loop stationary \
          distribution.  See MODELING.md for a guided tour.")
    Term.(
      const run $ runtime_args $ device_arg $ rate_arg $ capacity_arg
      $ weight_arg $ deadline_arg $ family_arg $ service_arg $ queue_arg
      $ loss_penalty_arg $ max_batch_arg $ batch_rates_arg $ batch_energy_arg)

(* --- entry point --------------------------------------------------------- *)

let () =
  let doc = "Dynamic power management with continuous-time Markov decision processes" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "dpm_cli" ~version:"1.0.0" ~doc)
          [
            info_cmd;
            check_cmd;
            solve_cmd;
            sweep_cmd;
            constrained_cmd;
            simulate_cmd;
            adapt_cmd;
            serve_cmd;
            fleet_cmd;
            dot_cmd;
            report_cmd;
            scenario_cmd;
          ]))
